"""CDRM: availability-driven dynamic replication (CLUSTER 2010), simplified.

The paper's related work discusses two dynamic-replication systems: Scarlett
(popularity-driven) and CDRM, which "aims to improve file availability by
centrally determining the ideal number of replicas for a file, and an
adequate placement strategy based on the blocking probability" — and notes
that "the effects of increasing locality are not studied".  Implementing a
simplified CDRM makes that contrast measurable: an availability-driven
replicator treats every file alike, so it pays replication traffic without
concentrating replicas where the popular reads are.

Model:

* every file's replica count is raised to the smallest ``r`` with
  ``1 - (1 - node_availability)^r >= availability_target`` (the classic
  availability equation CDRM centralizes);
* placement picks the least-loaded live nodes (the blocking-probability
  criterion reduces to load in our model);
* a periodic pass creates missing replicas over the network, throttled
  like any rebalancer.
"""

from __future__ import annotations

import math
import random
from functools import partial
from typing import TYPE_CHECKING, List, NamedTuple, Tuple

from repro.metrics.traffic import TrafficMeter
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.namenode import NameNode


class CdrmConfig(NamedTuple):
    """CDRM parameters."""

    #: desired per-file availability
    availability_target: float = 0.999
    #: assumed availability of a single node
    node_availability: float = 0.85
    #: seconds between reconciliation passes
    period_s: float = 300.0
    #: cap on concurrent replication copies
    max_concurrent: int = 4

    def validate(self) -> "CdrmConfig":
        """Raise on malformed configs; return self."""
        if not (0.0 < self.availability_target < 1.0):
            raise ValueError("availability target must be in (0, 1)")
        if not (0.0 < self.node_availability < 1.0):
            raise ValueError("node availability must be in (0, 1)")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.max_concurrent < 1:
            raise ValueError("need at least one copy stream")
        return self

    @property
    def target_replicas(self) -> int:
        """Smallest r with 1-(1-A)^r >= target."""
        return max(
            1,
            math.ceil(
                math.log(1.0 - self.availability_target)
                / math.log(1.0 - self.node_availability)
            ),
        )


class CdrmService:
    """Periodic availability reconciliation."""

    def __init__(
        self,
        config: CdrmConfig,
        namenode: "NameNode",
        engine: Engine,
        traffic: TrafficMeter,
        rng: random.Random,
        stop_when=None,
    ) -> None:
        self.config = config.validate()
        self.namenode = namenode
        self.engine = engine
        self.traffic = traffic
        self._rng = rng
        self.stop_when = stop_when
        self._active = 0
        self._queue: List[Tuple[int, int, int]] = []  # (block, src, dst)
        self.replicas_created = 0
        self.passes_run = 0

    def arm(self) -> None:
        """Schedule the first reconciliation pass."""
        self.engine.schedule_in(self.config.period_s, self._reconcile, "cdrm-pass")

    # -- reconciliation -------------------------------------------------------

    def _least_loaded_targets(self, bid: int, count: int) -> List[int]:
        locs = self.namenode.locations(bid)
        candidates = [
            n for n in self.namenode.cluster.slaves
            if n.alive and n.node_id not in locs
        ]
        candidates.sort(
            key=lambda n: (
                n.active_net_transfers,
                self.namenode.datanode(n.node_id).dynamic_bytes_used
                + len(self.namenode.datanode(n.node_id).static_blocks),
                n.node_id,
            )
        )
        return [n.node_id for n in candidates[:count]]

    def _reconcile(self) -> None:
        self.passes_run += 1
        target = self.config.target_replicas
        for bid, locs in self.namenode._locations.items():
            live = [n for n in locs if self.namenode.cluster.node(n).alive]
            missing = target - len(live)
            if missing <= 0 or not live:
                continue
            for dst in self._least_loaded_targets(bid, missing):
                src = self._rng.choice(live)
                self._queue.append((bid, src, dst))
        self._pump()
        if self.stop_when is None or not self.stop_when():
            self.engine.schedule_in(self.config.period_s, self._reconcile, "cdrm-pass")

    def _pump(self) -> None:
        while self._active < self.config.max_concurrent and self._queue:
            bid, src, dst = self._queue.pop(0)
            self._start_copy(bid, src, dst)  # skips simply continue the loop

    def _start_copy(self, bid: int, src: int, dst: int) -> None:
        cluster = self.namenode.cluster
        block = self.namenode.blocks[bid]
        if (
            not cluster.node(src).alive
            or not cluster.node(dst).alive
            or self.namenode.datanode(dst).has_block(bid)
        ):
            return  # skipped; the caller's pump loop moves on
        self._active += 1
        cluster.node(src).active_net_transfers += 1
        cluster.node(dst).active_net_transfers += 1
        duration = cluster.network.transfer_seconds(
            block.size_bytes, src, dst,
            contention=max(1, cluster.node(src).active_net_transfers),
        )
        self.traffic.record("rebalancing", block.size_bytes)
        self.engine.schedule_in(
            duration, partial(self._finish_copy, bid, src, dst), f"cdrm-copy:{bid}"
        )

    def _finish_copy(self, bid: int, src: int, dst: int) -> None:
        cluster = self.namenode.cluster
        cluster.node(src).active_net_transfers -= 1
        cluster.node(dst).active_net_transfers -= 1
        self._active -= 1
        dn = self.namenode.datanode(dst)
        if cluster.node(dst).alive and not dn.has_block(bid):
            dn.store_static(self.namenode.blocks[bid])
            self.namenode._locations[bid].add(dst)
            self.replicas_created += 1
        self._pump()
