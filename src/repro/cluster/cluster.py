"""Cluster assembly: spec + topology + models -> a concrete cluster."""

from __future__ import annotations

from typing import List, NamedTuple, Optional

import numpy as np

from repro.cluster.disk import CCT_DISK, EC2_DISK, DiskModel, DiskParams
from repro.cluster.network import (
    CCT_NETWORK,
    EC2_NETWORK,
    NetworkModel,
    NetworkParams,
)
from repro.cluster.node import Node
from repro.cluster.topology import DEDICATED, VIRTUALIZED, Topology
from repro.simulation.rng import RandomStreams


class ClusterSpec(NamedTuple):
    """Everything needed to instantiate a cluster deterministically."""

    name: str
    family: str  # DEDICATED or VIRTUALIZED
    n_nodes: int  # master included
    map_slots: int
    reduce_slots: int
    network: NetworkParams
    disk: DiskParams
    heartbeat_s: float  # TaskTracker heartbeat interval
    storage_bytes: int  # per-node HDFS capacity
    racks_per_agg: int = 4
    nodes_per_rack_mean: float = 2.0
    #: relative CPU slowness of a node (m1.small ~2.5x a CCT core)
    cpu_scale: float = 1.0
    #: rack count for dedicated clusters (CCT is single-rack)
    dedicated_racks: int = 1
    #: per-attempt CPU jitter: sigma of a lognormal multiplier
    cpu_jitter_sigma: float = 0.08
    #: probability an attempt hits a processor-sharing stall (virtualized)
    cpu_stall_prob: float = 0.0
    #: stall magnitude: uniform multiplier range
    cpu_stall_range: tuple = (2.0, 5.0)
    #: O(N) per-node network model instead of the O(N^2) pairwise matrix
    #: (required beyond ~10k nodes; different draws, so opt-in)
    lite_network: bool = False
    #: per-rack batched heartbeat hubs instead of per-node heartbeat events
    hb_batch: bool = False
    #: pool idle nodes into aggregate rack actors (implies hb_batch);
    #: nodes with tasks, replicas, or control traffic stay event-accurate
    mesoscale: bool = False


#: the Illinois Cloud Computing Testbed cluster of the paper:
#: 1 master + 19 slaves, single rack, Hadoop-default 2 map / 2 reduce slots.
#: Hadoop 0.21 heartbeats sub-second on small clusters; we use 1 s (the
#: Fair scheduler's delay is 1.5 heartbeats, Hadoop's default ratio).
CCT_SPEC = ClusterSpec(
    name="cct",
    family=DEDICATED,
    n_nodes=20,
    map_slots=2,
    reduce_slots=2,
    network=CCT_NETWORK,
    disk=CCT_DISK,
    heartbeat_s=1.0,
    storage_bytes=2 * 10**12,
)

#: the EC2 cluster of the paper: 1 master + 99 slaves, m1.small instances
#: (1 virtual core -> 2 map / 1 reduce slots), scattered over racks.
EC2_SPEC = ClusterSpec(
    name="ec2",
    family=VIRTUALIZED,
    n_nodes=100,
    map_slots=2,
    reduce_slots=1,
    network=EC2_NETWORK,
    disk=EC2_DISK,
    heartbeat_s=1.0,
    storage_bytes=160 * 10**9,
    racks_per_agg=12,
    cpu_scale=2.5,
    cpu_jitter_sigma=0.25,
    cpu_stall_prob=0.04,
    cpu_stall_range=(3.0, 10.0),
)


class Cluster:
    """A concrete cluster: nodes + topology + network/disk models.

    Node 0 is the master (NameNode + JobTracker host) and runs no tasks and
    stores no blocks, mirroring the paper's "1 master, N-1 slaves" setups.
    """

    def __init__(self, spec: ClusterSpec, streams: RandomStreams) -> None:
        self.spec = spec
        self.streams = streams
        topo_rng = streams.numpy("cluster.topology")
        self.topology = Topology(
            spec.family,
            spec.n_nodes,
            topo_rng,
            racks_per_agg=spec.racks_per_agg,
            nodes_per_rack_mean=spec.nodes_per_rack_mean,
            dedicated_racks=spec.dedicated_racks,
        )
        self.network = NetworkModel(
            self.topology,
            spec.network,
            streams.numpy("cluster.network"),
            lite=spec.lite_network,
        )
        disk_model = DiskModel(spec.disk, streams.numpy("cluster.disk"))
        net_rng = streams.numpy("cluster.node-nics")
        nic_jitter = (
            net_rng.uniform(0.97, 1.03, size=spec.n_nodes)
            if spec.lite_network
            else None
        )
        self.nodes: List[Node] = []
        for i in range(spec.n_nodes):
            is_master = i == 0
            if nic_jitter is not None:
                # lite model: the node's own sampled line rate, jittered
                nic = float(self.network.node_bw(i)) * float(nic_jitter[i])
            else:
                # steady per-node NIC capacity: mean of this node's pair
                # bandwidths
                pair_bws = self.network._pair_bw[i]
                finite = pair_bws[np.isfinite(pair_bws)]
                nic = float(finite.mean()) if finite.size else spec.network.bw_mean
                nic *= float(net_rng.uniform(0.97, 1.03))
            self.nodes.append(
                Node(
                    node_id=i,
                    rack=int(self.topology.rack_of[i]),
                    disk_bw_mbps=disk_model.sample(),
                    net_bw_mbps=nic,
                    map_slots=0 if is_master else spec.map_slots,
                    reduce_slots=0 if is_master else spec.reduce_slots,
                    storage_bytes=spec.storage_bytes,
                    is_master=is_master,
                )
            )

    # -- convenience -------------------------------------------------------

    @property
    def master(self) -> Node:
        """The master node (NameNode + JobTracker)."""
        return self.nodes[0]

    @property
    def slaves(self) -> List[Node]:
        """All worker nodes (DataNode + TaskTracker)."""
        return self.nodes[1:]

    @property
    def slave_ids(self) -> List[int]:
        """Node ids of the workers."""
        return [n.node_id for n in self.slaves]

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide map slot count."""
        return sum(n.map_slots for n in self.slaves)

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide reduce slot count."""
        return sum(n.reduce_slots for n in self.slaves)

    def node(self, node_id: int) -> Node:
        """Node by id."""
        return self.nodes[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.spec.name!r} {self.spec.n_nodes} nodes, "
            f"{self.topology.n_racks} racks>"
        )


def build_cluster(spec: ClusterSpec, seed: int = 20110926) -> Cluster:
    """Build a cluster from a spec with a fresh seeded stream factory."""
    return Cluster(spec, RandomStreams(seed))


#: nodes striped per rack in scale specs (a typical production rack row)
SCALE_NODES_PER_RACK = 40


def scale_spec(
    n_nodes: int,
    *,
    mesoscale: bool = False,
    hb_batch: Optional[bool] = None,
    heartbeat_s: float = 3.0,
    name: Optional[str] = None,
) -> ClusterSpec:
    """A dedicated-family spec sized for 10k-100k-node scale runs.

    Uses the CCT hardware models with the O(N) lite network path and
    ~40-node racks (production-like striping).  ``mesoscale`` pools idle
    nodes into rack hubs; ``hb_batch`` (default: follows ``mesoscale``)
    batches heartbeats while keeping every node event-accurate.
    """
    if n_nodes < 2:
        raise ValueError("scale spec needs a master and at least one slave")
    return ClusterSpec(
        name=name or f"scale{n_nodes}",
        family=DEDICATED,
        n_nodes=n_nodes,
        map_slots=2,
        reduce_slots=2,
        network=CCT_NETWORK,
        disk=CCT_DISK,
        heartbeat_s=heartbeat_s,
        storage_bytes=2 * 10**12,
        dedicated_racks=max(1, n_nodes // SCALE_NODES_PER_RACK),
        lite_network=True,
        hb_batch=mesoscale if hb_batch is None else hb_batch,
        mesoscale=mesoscale,
    )
