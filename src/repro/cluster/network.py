"""Network model: RTT and pairwise streaming bandwidth.

Calibration targets (paper, Tables I and II):

=====================  ======  ======  ======  =========
quantity                min     mean    max     std.dev.
=====================  ======  ======  ======  =========
CCT RTT (ms)            0.01    0.18    2.17    0.34
EC2 RTT (ms)            0.02    0.77    75.1    3.36
CCT net bw (MB/s)       115.4   117.7   118.0   0.65
EC2 net bw (MB/s)       5.8     73.2    109.9   16.9
=====================  ======  ======  ======  =========

The RTT model is ``per_hop_latency * hops + jitter`` where jitter is
lognormal; the virtualized model additionally suffers rare large
processor-sharing delays (Wang & Ng, INFOCOM'10), giving the 75 ms outliers
and the heavy-tailed std.dev.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.cluster.topology import Topology


class NetworkParams(NamedTuple):
    """Parameters of the stochastic network model for one cluster family."""

    #: propagation+switching latency per hop, ms
    per_hop_ms: float
    #: lognormal jitter: underlying normal mean (of log ms)
    jitter_mu: float
    #: lognormal jitter: underlying normal sigma
    jitter_sigma: float
    #: probability a probe hits a processor-sharing stall (virtualized)
    stall_prob: float
    #: stall magnitude, exponential mean in ms
    stall_mean_ms: float
    #: streaming bandwidth, MB/s: mean of the per-pair distribution
    bw_mean: float
    #: streaming bandwidth, MB/s: std.dev.
    bw_sigma: float
    #: bandwidth floor (congested/shared pairs), MB/s
    bw_min: float
    #: bandwidth ceiling (NIC line rate), MB/s
    bw_max: float
    #: probability that a pair is badly degraded (virtualized noisy neighbor)
    degraded_prob: float
    #: degraded pairs: uniform range low, MB/s
    degraded_low: float
    #: degraded pairs: uniform range high, MB/s
    degraded_high: float
    #: cross-rack bandwidth divisor (fabric oversubscription; 1 = none)
    cross_rack_factor: float = 1.0


#: Gigabit Ethernet, single rack, no virtualization.
CCT_NETWORK = NetworkParams(
    per_hop_ms=0.045,
    jitter_mu=np.log(0.07),
    jitter_sigma=1.1,
    stall_prob=0.0,
    stall_mean_ms=0.0,
    bw_mean=117.7,
    bw_sigma=0.5,
    bw_min=115.4,
    bw_max=118.0,
    degraded_prob=0.0,
    degraded_low=0.0,
    degraded_high=0.0,
)

#: EC2 m1.small, "moderate I/O performance", multi-rack, shared hosts.
EC2_NETWORK = NetworkParams(
    per_hop_ms=0.055,
    jitter_mu=np.log(0.28),
    jitter_sigma=1.0,
    stall_prob=0.004,
    stall_mean_ms=28.0,
    bw_mean=76.0,
    bw_sigma=13.0,
    bw_min=5.8,
    bw_max=109.9,
    degraded_prob=0.03,
    degraded_low=5.8,
    degraded_high=30.0,
)


class NetworkModel:
    """Samples RTTs and pairwise bandwidths over a :class:`Topology`.

    Pairwise *bandwidths* are sampled once at construction (paths and the
    neighbours sharing them are stable properties of an allocation), while
    *RTT probes* are sampled per call (they see transient queueing and
    scheduler stalls, which is exactly what Table I's max/σ capture).
    """

    def __init__(
        self,
        topology: Topology,
        params: NetworkParams,
        rng: np.random.Generator,
        lite: bool = False,
    ) -> None:
        self.topology = topology
        self.params = params
        self._rng = rng
        self.lite = lite
        n = topology.n_nodes
        if lite:
            # O(N) model for 10k-100k-node runs: one sampled line rate per
            # node, a pair's bandwidth is the slower endpoint (same mean and
            # spread, no N x N matrix).  Draw counts differ from the pair
            # model, so this is strictly opt-in (ClusterSpec.lite_network).
            self._pair_bw = None
            self._node_bw = self._sample_node_bandwidths(n)
        else:
            self._node_bw = None
            self._pair_bw = self._sample_pair_bandwidths(n)

    def _sample_node_bandwidths(self, n: int) -> np.ndarray:
        p = self.params
        bw = self._rng.normal(p.bw_mean, p.bw_sigma, size=n)
        if p.degraded_prob > 0:
            mask = self._rng.random(n) < p.degraded_prob
            bw[mask] = self._rng.uniform(
                p.degraded_low, p.degraded_high, size=int(mask.sum())
            )
        return np.clip(bw, p.bw_min, p.bw_max)

    def _sample_pair_bandwidths(self, n: int) -> np.ndarray:
        p = self.params
        bw = self._rng.normal(p.bw_mean, p.bw_sigma, size=(n, n))
        if p.degraded_prob > 0:
            mask = self._rng.random((n, n)) < p.degraded_prob
            bw[mask] = self._rng.uniform(p.degraded_low, p.degraded_high, size=int(mask.sum()))
        bw = np.clip(bw, p.bw_min, p.bw_max)
        if p.cross_rack_factor > 1.0:
            racks = self.topology.rack_of
            cross = racks[:, None] != racks[None, :]
            bw = np.where(cross, bw / p.cross_rack_factor, bw)
        bw = np.triu(bw, 1)
        bw = bw + bw.T
        np.fill_diagonal(bw, np.inf)  # loopback: never the bottleneck
        return bw

    # -- sampling ----------------------------------------------------------

    def rtt_ms(self, a: int, b: int) -> float:
        """One ping-style RTT sample between nodes ``a`` and ``b`` (ms)."""
        if a == b:
            return 0.01
        p = self.params
        hops = self.topology.hops(a, b)
        rtt = p.per_hop_ms * hops
        rtt += float(self._rng.lognormal(p.jitter_mu, p.jitter_sigma))
        if p.stall_prob > 0 and self._rng.random() < p.stall_prob:
            rtt += float(self._rng.exponential(p.stall_mean_ms))
        return rtt

    def rtt_matrix(self, samples_per_pair: int = 1) -> np.ndarray:
        """All-to-all RTT samples; shape (pairs*samples,). Used by Table I."""
        n = self.topology.n_nodes
        out = []
        for _ in range(samples_per_pair):
            for a in range(n):
                for b in range(n):
                    if a != b:
                        out.append(self.rtt_ms(a, b))
        return np.asarray(out)

    def node_bw(self, node_id: int) -> float:
        """Lite model only: the node's sampled line rate (MB/s)."""
        if self._node_bw is None:
            raise RuntimeError("node_bw is only defined for the lite network model")
        return float(self._node_bw[node_id])

    def _lite_pair_bw(self, a: int, b: int) -> float:
        node_bw = self._node_bw
        bw = min(node_bw[a], node_bw[b])
        p = self.params
        if p.cross_rack_factor > 1.0:
            racks = self.topology.rack_of
            if racks[a] != racks[b]:
                bw = bw / p.cross_rack_factor
        return bw

    def bandwidth_mbps(self, a: int, b: int) -> float:
        """Steady-state streaming bandwidth between ``a`` and ``b`` (MB/s)."""
        if self._pair_bw is None:
            if a == b:
                return float("inf")
            return float(self._lite_pair_bw(a, b))
        return float(self._pair_bw[a, b])

    def transfer_seconds(self, nbytes: int, a: int, b: int, contention: int = 1) -> float:
        """Time to move ``nbytes`` from ``a`` to ``b``.

        ``contention`` is the number of flows sharing the bottleneck
        (fair-share approximation).  Latency contributes one RTT of setup.
        """
        if a == b:
            return 0.0
        if self._pair_bw is None:
            bw = self._lite_pair_bw(a, b) / max(1, contention)
        else:
            bw = self._pair_bw[a, b] / max(1, contention)
        setup = self.rtt_ms(a, b) / 1000.0
        return float(nbytes) / (bw * 1e6) + setup
