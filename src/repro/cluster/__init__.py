"""Cluster substrate: machines, racks, topology, network and disk models.

This package stands in for the two physical testbeds of the paper:

* **CCT** — a dedicated, single-rack 20-node cluster (1 master + 19 slaves)
  with Gigabit Ethernet and fast local disks;
* **EC2** — a virtualized 100-node public-cloud cluster (1 master + 99
  slaves) on small instances, with nodes scattered across racks, higher and
  more variable RTTs, and lower effective network bandwidth.

The stochastic models are calibrated to the paper's Tables I and II and the
hop-count distribution of Figure 1, and are *probed* by simulated analogues
of ``ping``, ``hdparm`` and ``iperf`` (see :mod:`repro.cluster.probes`).
"""

from repro.cluster.node import Node
from repro.cluster.topology import Topology, DEDICATED, VIRTUALIZED
from repro.cluster.network import NetworkModel, NetworkParams, CCT_NETWORK, EC2_NETWORK
from repro.cluster.disk import DiskModel, DiskParams, CCT_DISK, EC2_DISK
from repro.cluster.cluster import Cluster, ClusterSpec, CCT_SPEC, EC2_SPEC, build_cluster

__all__ = [
    "Node",
    "Topology",
    "DEDICATED",
    "VIRTUALIZED",
    "NetworkModel",
    "NetworkParams",
    "CCT_NETWORK",
    "EC2_NETWORK",
    "DiskModel",
    "DiskParams",
    "CCT_DISK",
    "EC2_DISK",
    "Cluster",
    "ClusterSpec",
    "CCT_SPEC",
    "EC2_SPEC",
    "build_cluster",
]
