"""Rack / switch topology and hop-count model.

Two topology families are modeled:

* ``DEDICATED`` — an in-house cluster where a user's nodes land on one or two
  adjacent racks; all node pairs are 1–2 hops apart (Section II-B: "in an
  in-house data center of that size all nodes would have been 1 or 2 hops
  apart").

* ``VIRTUALIZED`` — an IaaS allocation that scatters nodes over many racks
  under several aggregation switches.  Traceroute-style hop counts between
  two VMs are derived from the switch path (same rack < same aggregation <
  cross aggregation) plus an overlay detour that virtualization sometimes
  introduces.  With the default parameters the hop histogram for a 20-node
  allocation peaks at 4 hops, matching Figure 1.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: topology family tags
DEDICATED = "dedicated"
VIRTUALIZED = "virtualized"

# structural hop counts for the virtualized family
_HOPS_SAME_RACK = 2
_HOPS_SAME_AGG = 4
_HOPS_CROSS_AGG = 6


class Topology:
    """Maps nodes to racks and node pairs to hop counts.

    Parameters
    ----------
    family:
        ``DEDICATED`` or ``VIRTUALIZED``.
    n_nodes:
        Total number of machines (master included).
    rng:
        NumPy generator used for rack placement and overlay jitter.
    racks_per_agg:
        Virtualized only — racks attached to one aggregation switch.
    nodes_per_rack_mean:
        Virtualized only — mean VMs-per-rack for this tenant's allocation.
        Small values scatter the allocation widely (the EC2 behaviour the
        paper observed).
    """

    def __init__(
        self,
        family: str,
        n_nodes: int,
        rng: np.random.Generator,
        racks_per_agg: int = 4,
        nodes_per_rack_mean: float = 2.0,
        dedicated_racks: int = 1,
    ) -> None:
        if family not in (DEDICATED, VIRTUALIZED):
            raise ValueError(f"unknown topology family {family!r}")
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.family = family
        self.n_nodes = n_nodes
        self.racks_per_agg = racks_per_agg

        if family == DEDICATED:
            # the CCT testbed is single-rack; in-house multi-rack clusters
            # (for the oversubscription ablation) stripe nodes round-robin
            if dedicated_racks < 1:
                raise ValueError("need at least one rack")
            self.rack_of = np.arange(n_nodes, dtype=np.int64) % dedicated_racks
            self.agg_of_rack = {r: 0 for r in range(dedicated_racks)}
        else:
            self.rack_of = self._scatter_racks(n_nodes, rng, nodes_per_rack_mean)
            n_racks = int(self.rack_of.max()) + 1
            # racks are assigned to aggregation switches contiguously; the
            # provider's rack ids are effectively arbitrary w.r.t. the tenant
            self.agg_of_rack = {r: r // racks_per_agg for r in range(n_racks)}

        # per-pair overlay detour (virtualized only): some VM pairs route
        # through an extra overlay/virtual-switch hop or two, and a few pairs
        # take a shortcut.  Sampled once — paths are stable per allocation.
        if family == VIRTUALIZED:
            self._detour = rng.choice(
                [-1, 0, 1, 2], size=(n_nodes, n_nodes), p=[0.10, 0.55, 0.25, 0.10]
            )
            self._detour = np.triu(self._detour, 1)
            self._detour = self._detour + self._detour.T
        else:
            self._detour = None

        # lazily-built per-node rack-membership index (see rack_members):
        # rack_of is immutable after construction, so one build suffices
        self._rack_members: List[frozenset] = []

    @staticmethod
    def _scatter_racks(
        n_nodes: int, rng: np.random.Generator, nodes_per_rack_mean: float
    ) -> np.ndarray:
        """Assign nodes to racks with a small mean occupancy per rack."""
        racks: List[int] = []
        rack = 0
        placed = 0
        while placed < n_nodes:
            # occupancy >= 1, geometric-ish around the mean
            occ = 1 + rng.poisson(max(0.0, nodes_per_rack_mean - 1.0))
            for _ in range(int(occ)):
                if placed >= n_nodes:
                    break
                racks.append(rack)
                placed += 1
            rack += 1
        arr = np.asarray(racks, dtype=np.int64)
        # shuffle node->rack mapping so node ids carry no locality info
        rng.shuffle(arr)
        return arr

    # -- queries ----------------------------------------------------------

    @property
    def n_racks(self) -> int:
        """Number of distinct racks used by this allocation."""
        return int(self.rack_of.max()) + 1

    def same_rack(self, a: int, b: int) -> bool:
        """True when nodes ``a`` and ``b`` share a rack."""
        return bool(self.rack_of[a] == self.rack_of[b])

    def hops(self, a: int, b: int) -> int:
        """Traceroute-style hop count between nodes ``a`` and ``b``."""
        if a == b:
            return 0
        if self.family == DEDICATED:
            return 1 if self.rack_of[a] == self.rack_of[b] else 2
        ra, rb = int(self.rack_of[a]), int(self.rack_of[b])
        if ra == rb:
            base = _HOPS_SAME_RACK
        elif self.agg_of_rack[ra] == self.agg_of_rack[rb]:
            base = _HOPS_SAME_AGG
        else:
            base = _HOPS_CROSS_AGG
        return max(1, base + int(self._detour[a, b]))

    def hop_matrix(self) -> np.ndarray:
        """Full symmetric matrix of hop counts (diagonal zero)."""
        n = self.n_nodes
        out = np.zeros((n, n), dtype=np.int64)
        for a in range(n):
            for b in range(a + 1, n):
                h = self.hops(a, b)
                out[a, b] = h
                out[b, a] = h
        return out

    def hop_histogram(self, max_hops: int = 10) -> np.ndarray:
        """Proportion of node pairs at each hop count 0..max_hops (Fig. 1)."""
        mat = self.hop_matrix()
        iu = np.triu_indices(self.n_nodes, 1)
        vals = mat[iu]
        hist = np.bincount(np.clip(vals, 0, max_hops), minlength=max_hops + 1)
        return hist / max(1, vals.size)

    def nodes_in_rack(self, rack: int) -> List[int]:
        """Node ids located in ``rack``."""
        return [i for i, r in enumerate(self.rack_of) if r == rack]

    def rack_members(self, node_id: int) -> frozenset:
        """Nodes sharing ``node_id``'s rack, as a cached frozenset.

        This is the locality-scan index: schedulers test replica sets
        against it with ``set.isdisjoint``, which is much cheaper than
        comparing ``rack_of`` entries (NumPy scalars) per replica holder.
        """
        members = self._rack_members
        if not members:
            by_rack: Dict[int, List[int]] = {}
            for node, rack in enumerate(self.rack_of.tolist()):
                by_rack.setdefault(rack, []).append(node)
            sets = {rack: frozenset(nodes) for rack, nodes in by_rack.items()}
            members.extend(sets[rack] for rack in self.rack_of.tolist())
        return members[node_id]

    def racks(self) -> Dict[int, List[int]]:
        """Mapping rack id -> node ids."""
        out: Dict[int, List[int]] = {}
        for i, r in enumerate(self.rack_of):
            out.setdefault(int(r), []).append(i)
        return out
