"""Measurement probes: simulated ping / hdparm / iperf / traceroute.

These reproduce the methodology of Section II-B: the paper ran ``ping`` for
all-to-all RTTs (Table I), ``hdparm`` for disk read bandwidth and ``iperf``
for network bandwidth (Table II), and ``traceroute`` for inter-node distance
(Figure 1).  Each probe here runs the same experiment against the simulated
cluster and returns the same summary statistics.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.disk import DiskModel


class SummaryStats(NamedTuple):
    """min / mean / max / population std.dev — the columns of Tables I–II."""

    min: float
    mean: float
    max: float
    std: float

    @classmethod
    def of(cls, values: np.ndarray) -> "SummaryStats":
        """Summarize a sample array."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("empty sample")
        return cls(
            float(values.min()),
            float(values.mean()),
            float(values.max()),
            float(values.std()),
        )

    def row(self, label: str, unit: str = "") -> str:
        """Format as a printable table row."""
        u = f" {unit}" if unit else ""
        return (
            f"{label:<28s} {self.min:8.2f}{u} {self.mean:8.2f}{u} "
            f"{self.max:8.2f}{u} {self.std:8.2f}{u}"
        )


def ping_all_pairs(cluster: Cluster, samples_per_pair: int = 3) -> SummaryStats:
    """All-to-all ping RTT summary (Table I)."""
    rtts = cluster.network.rtt_matrix(samples_per_pair)
    return SummaryStats.of(rtts)


def measure_disk_bandwidth(cluster: Cluster, probes_per_node: int = 3) -> SummaryStats:
    """hdparm-style sequential-read probes on every node (Table II)."""
    model = DiskModel(cluster.spec.disk, cluster.streams.numpy("probe.disk"))
    samples = [model.sample() for _ in range(probes_per_node * len(cluster.nodes))]
    return SummaryStats.of(np.asarray(samples))


def measure_network_bandwidth(cluster: Cluster) -> SummaryStats:
    """iperf-style pairwise streaming bandwidth probes (Table II).

    Probes every ordered pair once (the paper ran iperf between node pairs).
    """
    n = len(cluster.nodes)
    out = []
    for a in range(n):
        for b in range(n):
            if a != b:
                out.append(cluster.network.bandwidth_mbps(a, b))
    return SummaryStats.of(np.asarray(out))


def traceroute_hop_histogram(cluster: Cluster, max_hops: int = 10) -> np.ndarray:
    """Proportion of node pairs at each hop distance (Figure 1)."""
    return cluster.topology.hop_histogram(max_hops)


def bandwidth_ratio(cluster: Cluster) -> float:
    """network-bandwidth / disk-bandwidth ratio for a cluster.

    Section II-B's "key insight": this ratio is ~40% higher for CCT than
    EC2, so the gain of local reads is larger on EC2.
    """
    net = measure_network_bandwidth(cluster).mean
    disk = measure_disk_bandwidth(cluster).mean
    return net / disk


def probe_report(cluster: Cluster) -> Dict[str, SummaryStats]:
    """All probes at once, keyed the way the tables label them."""
    return {
        "rtt_ms": ping_all_pairs(cluster),
        "disk_bw_mbps": measure_disk_bandwidth(cluster),
        "net_bw_mbps": measure_network_bandwidth(cluster),
    }
