"""Disk model: sequential read bandwidth per node.

Calibration targets (paper, Table II):

======================  ======  ======  ======  =========
quantity                 min     mean    max     std.dev.
======================  ======  ======  ======  =========
CCT disk bw (MB/s)       145.3   157.8   167.0   8.02
EC2 disk bw (MB/s)       67.1    141.5   357.9   74.2
======================  ======  ======  ======  =========

The EC2 distribution is wide and right-skewed: an m1.small instance "uses
all available disk bandwidth when no other VMs on the host are using it", so
probes see anything from a heavily shared spindle (~67 MB/s) to a whole
dedicated disk array burst (~358 MB/s).  We model it as a two-component
mixture (shared vs. alone-on-host).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class DiskParams(NamedTuple):
    """Parameters of the per-node sequential-read bandwidth distribution."""

    #: 'normal' or 'mixture'
    kind: str
    mean: float
    sigma: float
    lo: float
    hi: float
    #: mixture only: probability the probe runs effectively alone on host
    burst_prob: float
    burst_mean: float
    burst_sigma: float


#: dedicated hardware: tight normal around 157.8 MB/s.
CCT_DISK = DiskParams(
    kind="normal", mean=157.8, sigma=7.0, lo=145.3, hi=167.0,
    burst_prob=0.0, burst_mean=0.0, burst_sigma=0.0,
)

#: virtualized, shared spindles with occasional full-disk bursts.
EC2_DISK = DiskParams(
    kind="mixture", mean=110.0, sigma=30.0, lo=67.1, hi=357.9,
    burst_prob=0.18, burst_mean=290.0, burst_sigma=45.0,
)


class DiskModel:
    """Samples per-node disk read bandwidths."""

    def __init__(self, params: DiskParams, rng: np.random.Generator) -> None:
        self.params = params
        self._rng = rng

    def sample(self) -> float:
        """One hdparm-style sequential-read bandwidth measurement (MB/s)."""
        p = self.params
        if p.kind == "mixture" and self._rng.random() < p.burst_prob:
            bw = self._rng.normal(p.burst_mean, p.burst_sigma)
        else:
            bw = self._rng.normal(p.mean, p.sigma)
        return float(np.clip(bw, p.lo, p.hi))

    def sample_nodes(self, n: int) -> np.ndarray:
        """Per-node steady bandwidths for an ``n``-node cluster."""
        return np.asarray([self.sample() for _ in range(n)])
