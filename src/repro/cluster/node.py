"""A cluster machine."""

from __future__ import annotations


class Node:
    """One machine in the cluster.

    A node has a rack assignment, per-node disk and network characteristics
    (sampled once at cluster construction, the way real heterogeneous
    hardware differs machine-to-machine), and MapReduce slot counts.

    Transfer-level contention is tracked with simple counters
    (:attr:`active_net_transfers`, :attr:`active_disk_reads`) that the time
    model consults when estimating read durations.
    """

    __slots__ = (
        "node_id",
        "rack",
        "hostname",
        "disk_bw_mbps",
        "net_bw_mbps",
        "map_slots",
        "reduce_slots",
        "storage_bytes",
        "active_net_transfers",
        "active_disk_reads",
        "is_master",
        "alive",
    )

    def __init__(
        self,
        node_id: int,
        rack: int,
        disk_bw_mbps: float,
        net_bw_mbps: float,
        map_slots: int = 2,
        reduce_slots: int = 2,
        storage_bytes: int = 2 * 10**12,
        is_master: bool = False,
    ) -> None:
        if disk_bw_mbps <= 0 or net_bw_mbps <= 0:
            raise ValueError("bandwidths must be positive")
        if map_slots < 0 or reduce_slots < 0:
            raise ValueError("slot counts must be nonnegative")
        self.node_id = node_id
        self.rack = rack
        self.hostname = f"node{node_id:03d}"
        self.disk_bw_mbps = disk_bw_mbps
        self.net_bw_mbps = net_bw_mbps
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.storage_bytes = storage_bytes
        self.active_net_transfers = 0
        self.active_disk_reads = 0
        self.is_master = is_master
        self.alive = True

    def effective_disk_bw(self) -> float:
        """Disk bandwidth under current contention (fair-shared, MB/s)."""
        return self.disk_bw_mbps / max(1, self.active_disk_reads)

    def effective_net_bw(self) -> float:
        """Network bandwidth under current contention (fair-shared, MB/s)."""
        return self.net_bw_mbps / max(1, self.active_net_transfers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "master" if self.is_master else "slave"
        return f"<Node {self.hostname} rack={self.rack} {role}>"
