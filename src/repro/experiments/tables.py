"""Tables I and II and Figure 1: cluster measurement experiments."""

from __future__ import annotations

from typing import Dict, List, NamedTuple

import numpy as np

from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, build_cluster
from repro.cluster.probes import (
    SummaryStats,
    measure_disk_bandwidth,
    measure_network_bandwidth,
    ping_all_pairs,
    traceroute_hop_histogram,
)

#: the paper probed 20-node clusters in both environments
_EC2_20 = EC2_SPEC._replace(n_nodes=20)


class Table1Row(NamedTuple):
    """One row of Table I (RTT in ms)."""

    cluster: str
    stats: SummaryStats


def table1_rtt(seed: int = 20110926, samples_per_pair: int = 3) -> List[Table1Row]:
    """All-to-all ping RTTs for a dedicated and a virtualized cluster."""
    rows = []
    for spec in (CCT_SPEC, _EC2_20):
        cluster = build_cluster(spec, seed)
        rows.append(Table1Row(spec.name, ping_all_pairs(cluster, samples_per_pair)))
    return rows


class Table2Row(NamedTuple):
    """One row of Table II (bandwidth in MB/s)."""

    label: str
    stats: SummaryStats


def table2_bandwidth(seed: int = 20110926) -> List[Table2Row]:
    """Disk and network bandwidth for both clusters."""
    rows = []
    for spec in (CCT_SPEC, _EC2_20):
        cluster = build_cluster(spec, seed)
        rows.append(
            Table2Row(f"{spec.name} disk bandwidth", measure_disk_bandwidth(cluster))
        )
        rows.append(
            Table2Row(
                f"{spec.name} network bandwidth", measure_network_bandwidth(cluster)
            )
        )
    return rows


def bandwidth_ratios(seed: int = 20110926) -> Dict[str, float]:
    """Section II-B's key insight: net/disk bandwidth ratio per cluster."""
    out = {}
    for spec in (CCT_SPEC, _EC2_20):
        cluster = build_cluster(spec, seed)
        net = measure_network_bandwidth(cluster).mean
        disk = measure_disk_bandwidth(cluster).mean
        out[spec.name] = net / disk
    return out


def fig1_hop_distribution(seed: int = 20110926, max_hops: int = 10) -> np.ndarray:
    """Proportion of EC2 node pairs at each hop count (Figure 1)."""
    cluster = build_cluster(_EC2_20, seed)
    return traceroute_hop_histogram(cluster, max_hops)


def print_table1(rows: List[Table1Row]) -> None:
    """Render Table I the way the paper formats it."""
    print("Table I: all-to-all ping round-trip times (ms)")
    print(f"{'':<28s} {'Min':>10s} {'Mean':>10s} {'Max':>10s} {'Std.Dev':>10s}")
    for row in rows:
        print(row.stats.row(row.cluster.upper()))


def print_table2(rows: List[Table2Row]) -> None:
    """Render Table II."""
    print("Table II: disk (read) and network bandwidth (MB/s)")
    print(f"{'':<28s} {'Min':>10s} {'Mean':>10s} {'Max':>10s} {'Std.Dev':>10s}")
    for row in rows:
        print(row.stats.row(row.label.upper()))
