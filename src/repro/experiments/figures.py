"""One driver per evaluation figure (Figs. 2-11).

Every function is deterministic given its seed, returns plain data
structures a caller can print or plot, and takes an ``n_jobs`` knob so the
benchmark suite can run reduced-scale versions while
``examples/reproduce_paper.py`` runs the full 500-job traces.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.access_log import AccessLog, generate_access_log
from repro.analysis.patterns import (
    age_at_access_cdf,
    median_age_hours,
    popularity_by_rank,
    window_distribution,
)
from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, ClusterSpec
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, ExperimentResult
from repro.experiments.sweep import (
    ResultCache,
    SweepCell,
    WorkloadSpec,
    results_of,
    run_cells,
)
from repro.workloads.swim import Workload, synthesize_wl1, synthesize_wl2

#: seed used throughout the reproduction
DEFAULT_SEED = 20110926

#: the paper's headline DARE configurations (Fig. 7/10 captions)
LRU_CONFIG = DareConfig.greedy_lru(budget=0.2)
ET_CONFIG = DareConfig.elephant_trap(p=0.3, threshold=1, budget=0.2)


def _wl(name: str, n_jobs: int, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    if name == "wl1":
        return synthesize_wl1(rng, n_jobs=n_jobs)
    if name == "wl2":
        return synthesize_wl2(rng, n_jobs=n_jobs)
    raise ValueError(f"unknown workload {name!r}")


# --------------------------------------------------------------------------
# Section III figures (audit-log analyses)
# --------------------------------------------------------------------------


def _log(seed: int) -> AccessLog:
    return generate_access_log(np.random.default_rng(seed))


def fig2_popularity(seed: int = DEFAULT_SEED) -> Dict[str, np.ndarray]:
    """File popularity vs rank, raw and block-weighted (Fig. 2)."""
    log = _log(seed)
    return {
        "raw": popularity_by_rank(log, weighted=False),
        "weighted": popularity_by_rank(log, weighted=True),
    }


def fig3_age_cdf(
    seed: int = DEFAULT_SEED, grid_hours: Optional[np.ndarray] = None
) -> Dict[str, np.ndarray]:
    """CDF of file age at access (Fig. 3)."""
    log = _log(seed)
    if grid_hours is None:
        grid_hours = np.concatenate(
            [np.linspace(0.1, 24, 48), np.linspace(25, 168, 72)]
        )
    return {
        "grid_hours": grid_hours,
        "cdf": age_at_access_cdf(log, grid_hours),
        "median_hours": np.asarray([median_age_hours(log)]),
    }


def fig4_windows(seed: int = DEFAULT_SEED) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """80 %-access window distribution over the week (Fig. 4)."""
    log = _log(seed)
    return {
        "unweighted": window_distribution(log, weighted=False),
        "weighted": window_distribution(log, weighted=True),
    }


def fig5_windows_day(
    seed: int = DEFAULT_SEED, day: int = 1
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """80 %-access window distribution within one day (Fig. 5; day 2 of the
    data set is ``day=1`` zero-based)."""
    log = _log(seed)
    start, end = day * 24.0, (day + 1) * 24.0
    return {
        "unweighted": window_distribution(log, weighted=False, start_h=start, end_h=end),
        "weighted": window_distribution(log, weighted=True, start_h=start, end_h=end),
    }


def fig6_access_cdf(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Empirical access CDF by file rank of the experiment workload (Fig. 6)."""
    return _wl("wl1", n_jobs, seed).empirical_access_cdf()


# --------------------------------------------------------------------------
# Figures 7 and 10: the headline cluster experiments
# --------------------------------------------------------------------------

#: policy labels in the figures' bar order
POLICY_LABELS = ("vanilla", "lru", "elephant-trap")
_POLICIES = (DareConfig.off(), LRU_CONFIG, ET_CONFIG)


class Fig7Cell(NamedTuple):
    """One bar group of Fig. 7 (a scheduler x workload combination)."""

    scheduler: str
    workload: str
    #: job data locality per policy, Fig. 7a bar heights
    locality: Dict[str, float]
    #: GMTT normalized to vanilla, Fig. 7b
    gmtt_normalized: Dict[str, float]
    #: mean slowdown, Fig. 7c
    slowdown: Dict[str, float]
    #: mean map-task time normalized to vanilla (Section V-C)
    map_time_normalized: Dict[str, float]
    #: raw results, for deeper inspection
    results: Dict[str, ExperimentResult]


def _policy_cells(
    cluster_spec: ClusterSpec,
    scheduler: str,
    workload: WorkloadSpec,
    seed: int,
    grid: str,
) -> List[SweepCell]:
    """One bar group's cells: the three policies of one scheduler x workload."""
    return [
        SweepCell(
            ExperimentConfig(
                cluster_spec=cluster_spec, scheduler=scheduler, dare=dare, seed=seed
            ),
            workload,
            tag=f"{grid}/{workload.kind}/{scheduler}/{label}",
        )
        for label, dare in zip(POLICY_LABELS, _POLICIES)
    ]


def _assemble_cell(
    scheduler: str, workload_name: str, results: Dict[str, ExperimentResult]
) -> Fig7Cell:
    base = results["vanilla"]
    return Fig7Cell(
        scheduler=scheduler,
        workload=workload_name,
        locality={k: r.job_locality for k, r in results.items()},
        gmtt_normalized={k: r.gmtt_s / base.gmtt_s for k, r in results.items()},
        slowdown={k: r.slowdown for k, r in results.items()},
        map_time_normalized={
            k: r.mean_map_s / base.mean_map_s for k, r in results.items()
        },
        results=results,
    )


def _run_policy_grid(
    cells: List[SweepCell], jobs: int, cache: Optional[ResultCache]
) -> List[Fig7Cell]:
    """Run bar-group cells (built by :func:`_policy_cells`, POLICY_LABELS
    per group, group order preserved) and fold them into Fig7Cells."""
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    out = []
    for start in range(0, len(cells), len(POLICY_LABELS)):
        group = {
            label: results[start + k] for k, label in enumerate(POLICY_LABELS)
        }
        cell = cells[start]
        out.append(
            _assemble_cell(cell.config.scheduler, cell.workload.kind, group)
        )
    return out


def fig7_cells(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> List[SweepCell]:
    """The 12 cells behind Fig. 7: wl1/wl2 x FIFO/Fair x three policies."""
    cells = []
    for wl_name in ("wl1", "wl2"):
        workload = WorkloadSpec(wl_name, n_jobs, seed)
        for scheduler in ("fifo", "fair"):
            cells.extend(_policy_cells(CCT_SPEC, scheduler, workload, seed, "fig7"))
    return cells


def fig7_cct(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Fig7Cell]:
    """The 20-node CCT experiments (Fig. 7a-c): FIFO/Fair x wl1/wl2.

    ``jobs``/``cache`` fan the cells out over worker processes and the
    sweep result cache; results are identical to the serial default.
    """
    return _run_policy_grid(fig7_cells(n_jobs, seed), jobs, cache)


def fig10_cells(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> List[SweepCell]:
    """The 6 cells behind Fig. 10: wl1 on EC2 x FIFO/Fair x three policies."""
    workload = WorkloadSpec("wl1", n_jobs, seed)
    cells = []
    for scheduler in ("fifo", "fair"):
        cells.extend(_policy_cells(EC2_SPEC, scheduler, workload, seed, "fig10"))
    return cells


def fig10_ec2(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Fig7Cell]:
    """The 100-node EC2 experiments (Fig. 10a-c): FIFO/Fair on wl1."""
    return _run_policy_grid(fig10_cells(n_jobs, seed), jobs, cache)


def print_fig7(cells: List[Fig7Cell], title: str = "Fig. 7 (20-node CCT)") -> None:
    """Render the three panels as rows."""
    print(title)
    hdr = f"{'cell':<14s}" + "".join(f"{p:>15s}" for p in POLICY_LABELS)
    for metric, panel in [
        ("locality", "(a) data locality"),
        ("gmtt_normalized", "(b) normalized GMTT"),
        ("slowdown", "(c) mean slowdown"),
        ("map_time_normalized", "(V-C) normalized map time"),
    ]:
        print(panel)
        print(hdr)
        for cell in cells:
            vals = getattr(cell, metric)
            row = f"{cell.scheduler}({cell.workload})"
            print(f"{row:<14s}" + "".join(f"{vals[p]:>15.3f}" for p in POLICY_LABELS))


# --------------------------------------------------------------------------
# Figures 8 and 9: sensitivity analyses (wl2, per the captions)
# --------------------------------------------------------------------------


class SweepPoint(NamedTuple):
    """One x-value of a sensitivity sweep, for one scheduler."""

    x: float
    scheduler: str
    locality: float
    blocks_per_job: float


def _sweep_cells(
    grid: str,
    workload: WorkloadSpec,
    schedulers: Sequence[str],
    configs: Sequence[Tuple[float, DareConfig]],
    seed: int,
    cluster_spec: ClusterSpec = CCT_SPEC,
) -> List[SweepCell]:
    """Sensitivity-sweep cells: scheduler x x-value, x carried on the cell."""
    return [
        SweepCell(
            ExperimentConfig(
                cluster_spec=cluster_spec, scheduler=scheduler, dare=dare, seed=seed
            ),
            workload,
            tag=f"{grid}/{workload.kind}/{scheduler}/x={x:g}",
            x=x,
        )
        for scheduler in schedulers
        for x, dare in configs
    ]


def _run_sweep(
    cells: List[SweepCell], jobs: int, cache: Optional[ResultCache]
) -> List[SweepPoint]:
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    return [
        SweepPoint(c.x, c.config.scheduler, r.job_locality, r.blocks_created_per_job)
        for c, r in zip(cells, results)
    ]


def fig8a_cells(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the ElephantTrap p sweep (Fig. 8a)."""
    configs = [
        (
            p,
            DareConfig.off()
            if p == 0.0
            else DareConfig.elephant_trap(p=p, threshold=1, budget=0.2),
        )
        for p in p_values
    ]
    return _sweep_cells(
        "fig8a", WorkloadSpec("wl2", n_jobs, seed), ("fifo", "fair"), configs, seed
    )


def fig8a_p_sweep(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[SweepPoint]:
    """Locality and blocks/job vs ElephantTrap p (threshold=1, budget=0.2)."""
    return _run_sweep(fig8a_cells(p_values, n_jobs, seed), jobs, cache)


def fig8b_cells(
    thresholds: Sequence[int] = (1, 2, 3, 4, 5),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.5,
) -> List[SweepCell]:
    """Cells of the aging-threshold sweep (Fig. 8b)."""
    configs = [
        (float(t), DareConfig.elephant_trap(p=0.9, threshold=t, budget=budget))
        for t in thresholds
    ]
    return _sweep_cells(
        "fig8b", WorkloadSpec("wl2", n_jobs, seed), ("fifo", "fair"), configs, seed
    )


def fig8b_threshold_sweep(
    thresholds: Sequence[int] = (1, 2, 3, 4, 5),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.5,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[SweepPoint]:
    """Locality and blocks/job vs aging threshold (p=0.9; the paper's
    caption uses budget=0.5).

    At the caption's generous budget evictions are rare and the sweep is
    flat — consistent with the paper's conclusion that DARE "is not too
    sensitive to changes in the threshold parameter".  Pass a tight
    ``budget`` (e.g. 0.1) to surface the mechanism the paper describes:
    higher thresholds evict slightly too eagerly, costing a little
    locality while creating slightly more replicas."""
    return _run_sweep(fig8b_cells(thresholds, n_jobs, seed, budget), jobs, cache)


def fig9a_cells(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the greedy-LRU budget sweep (Fig. 9a)."""
    configs = [
        (b, DareConfig.off() if b == 0.0 else DareConfig.greedy_lru(budget=b))
        for b in budgets
    ]
    return _sweep_cells(
        "fig9a", WorkloadSpec("wl2", n_jobs, seed), ("fifo", "fair"), configs, seed
    )


def fig9a_budget_sweep_lru(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[SweepPoint]:
    """Locality and blocks/job vs budget under greedy LRU (Fig. 9a)."""
    return _run_sweep(fig9a_cells(budgets, n_jobs, seed), jobs, cache)


def _fig9b_cells_for_p(
    p: float, budgets: Sequence[float], n_jobs: int, seed: int
) -> List[SweepCell]:
    configs = [
        (
            b,
            DareConfig.off()
            if b == 0.0
            else DareConfig.elephant_trap(p=p, threshold=1, budget=b),
        )
        for b in budgets
    ]
    return _sweep_cells(
        f"fig9b/p={p:g}", WorkloadSpec("wl2", n_jobs, seed),
        ("fifo", "fair"), configs, seed,
    )


def fig9b_cells(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    p_values: Sequence[float] = (0.3, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the ElephantTrap budget sweep (Fig. 9b), all p values."""
    cells: List[SweepCell] = []
    for p in p_values:
        cells.extend(_fig9b_cells_for_p(p, budgets, n_jobs, seed))
    return cells


def fig9b_budget_sweep_et(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    p_values: Sequence[float] = (0.3, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[float, List[SweepPoint]]:
    """Locality and blocks/job vs budget under ElephantTrap (Fig. 9b)."""
    return {
        p: _run_sweep(_fig9b_cells_for_p(p, budgets, n_jobs, seed), jobs, cache)
        for p in p_values
    }


def sweep_point_from_trace(path: str, x: Optional[float] = None) -> SweepPoint:
    """Rebuild one :class:`SweepPoint` from a ``run --trace`` JSONL file.

    A figure built this way carries replayable provenance: the trace *is*
    the measurement, and ``python -m repro replay verify`` proves it equals
    what the live run saw.  ``x`` defaults to the budget recorded in the
    trace's ``run.config`` header.
    """
    from repro.replay import load_trace, reconstruct

    index = load_trace(path)
    state = reconstruct(index, strict=False)
    config = index.config
    scheduler = str(config.data["scheduler"]) if config is not None else ""
    if x is None:
        x = float(config.data.get("budget", 0.0)) if config is not None else 0.0
    return SweepPoint(
        x=x,
        scheduler=scheduler,
        locality=state.job_locality(),
        blocks_per_job=state.blocks_created / max(1, len(state.jobs)),
    )


def sweep_from_traces(
    paths: Sequence[str], xs: Optional[Sequence[float]] = None
) -> List[SweepPoint]:
    """Sweep points from a set of traces, one per x-value, in path order."""
    if xs is None:
        xs = [None] * len(paths)
    if len(xs) != len(paths):
        raise ValueError("xs and paths must have the same length")
    return [sweep_point_from_trace(p, x) for p, x in zip(paths, xs)]


def print_sweep(points: List[SweepPoint], xlabel: str) -> None:
    """Render a sensitivity sweep as rows."""
    print(f"{xlabel:>10s} {'scheduler':>10s} {'locality%':>10s} {'blocks/job':>11s}")
    for pt in points:
        print(
            f"{pt.x:>10.2f} {pt.scheduler:>10s} {100 * pt.locality:>10.1f} "
            f"{pt.blocks_per_job:>11.2f}"
        )


# --------------------------------------------------------------------------
# Figure 11: replica-placement uniformity
# --------------------------------------------------------------------------


class Fig11Point(NamedTuple):
    """cv of node popularity indices before/after a DARE run."""

    p: float
    cv_before: float
    cv_after: float


def fig11_cells(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the placement-uniformity sweep (Fig. 11)."""
    configs = [
        (
            p,
            DareConfig.off()
            if p == 0.0
            else DareConfig.elephant_trap(p=p, threshold=1, budget=0.2),
        )
        for p in p_values
    ]
    return _sweep_cells(
        "fig11", WorkloadSpec("wl1", n_jobs, seed), ("fifo",), configs, seed
    )


def fig11_uniformity(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Fig11Point]:
    """cv of popularity indices vs p (wl1, FIFO, budget=0.2, threshold=1)."""
    cells = fig11_cells(p_values, n_jobs, seed)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    return [
        Fig11Point(c.x, r.cv_before, r.cv_after) for c, r in zip(cells, results)
    ]
