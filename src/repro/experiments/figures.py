"""One driver per evaluation figure (Figs. 2-11).

Every function is deterministic given its seed, returns plain data
structures a caller can print or plot, and takes an ``n_jobs`` knob so the
benchmark suite can run reduced-scale versions while
``examples/reproduce_paper.py`` runs the full 500-job traces.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.access_log import AccessLog, generate_access_log
from repro.analysis.patterns import (
    age_at_access_cdf,
    median_age_hours,
    popularity_by_rank,
    window_distribution,
)
from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, ClusterSpec
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.workloads.swim import Workload, synthesize_wl1, synthesize_wl2

#: seed used throughout the reproduction
DEFAULT_SEED = 20110926

#: the paper's headline DARE configurations (Fig. 7/10 captions)
LRU_CONFIG = DareConfig.greedy_lru(budget=0.2)
ET_CONFIG = DareConfig.elephant_trap(p=0.3, threshold=1, budget=0.2)


def _wl(name: str, n_jobs: int, seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    if name == "wl1":
        return synthesize_wl1(rng, n_jobs=n_jobs)
    if name == "wl2":
        return synthesize_wl2(rng, n_jobs=n_jobs)
    raise ValueError(f"unknown workload {name!r}")


# --------------------------------------------------------------------------
# Section III figures (audit-log analyses)
# --------------------------------------------------------------------------


def _log(seed: int) -> AccessLog:
    return generate_access_log(np.random.default_rng(seed))


def fig2_popularity(seed: int = DEFAULT_SEED) -> Dict[str, np.ndarray]:
    """File popularity vs rank, raw and block-weighted (Fig. 2)."""
    log = _log(seed)
    return {
        "raw": popularity_by_rank(log, weighted=False),
        "weighted": popularity_by_rank(log, weighted=True),
    }


def fig3_age_cdf(
    seed: int = DEFAULT_SEED, grid_hours: Optional[np.ndarray] = None
) -> Dict[str, np.ndarray]:
    """CDF of file age at access (Fig. 3)."""
    log = _log(seed)
    if grid_hours is None:
        grid_hours = np.concatenate(
            [np.linspace(0.1, 24, 48), np.linspace(25, 168, 72)]
        )
    return {
        "grid_hours": grid_hours,
        "cdf": age_at_access_cdf(log, grid_hours),
        "median_hours": np.asarray([median_age_hours(log)]),
    }


def fig4_windows(seed: int = DEFAULT_SEED) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """80 %-access window distribution over the week (Fig. 4)."""
    log = _log(seed)
    return {
        "unweighted": window_distribution(log, weighted=False),
        "weighted": window_distribution(log, weighted=True),
    }


def fig5_windows_day(
    seed: int = DEFAULT_SEED, day: int = 1
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """80 %-access window distribution within one day (Fig. 5; day 2 of the
    data set is ``day=1`` zero-based)."""
    log = _log(seed)
    start, end = day * 24.0, (day + 1) * 24.0
    return {
        "unweighted": window_distribution(log, weighted=False, start_h=start, end_h=end),
        "weighted": window_distribution(log, weighted=True, start_h=start, end_h=end),
    }


def fig6_access_cdf(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Empirical access CDF by file rank of the experiment workload (Fig. 6)."""
    return _wl("wl1", n_jobs, seed).empirical_access_cdf()


# --------------------------------------------------------------------------
# Figures 7 and 10: the headline cluster experiments
# --------------------------------------------------------------------------

#: policy labels in the figures' bar order
POLICY_LABELS = ("vanilla", "lru", "elephant-trap")
_POLICIES = (DareConfig.off(), LRU_CONFIG, ET_CONFIG)


class Fig7Cell(NamedTuple):
    """One bar group of Fig. 7 (a scheduler x workload combination)."""

    scheduler: str
    workload: str
    #: job data locality per policy, Fig. 7a bar heights
    locality: Dict[str, float]
    #: GMTT normalized to vanilla, Fig. 7b
    gmtt_normalized: Dict[str, float]
    #: mean slowdown, Fig. 7c
    slowdown: Dict[str, float]
    #: mean map-task time normalized to vanilla (Section V-C)
    map_time_normalized: Dict[str, float]
    #: raw results, for deeper inspection
    results: Dict[str, ExperimentResult]


def _run_cell(
    cluster_spec: ClusterSpec,
    scheduler: str,
    workload: Workload,
    seed: int,
) -> Fig7Cell:
    results: Dict[str, ExperimentResult] = {}
    for label, dare in zip(POLICY_LABELS, _POLICIES):
        cfg = ExperimentConfig(
            cluster_spec=cluster_spec, scheduler=scheduler, dare=dare, seed=seed
        )
        results[label] = run_experiment(cfg, workload)
    base = results["vanilla"]
    return Fig7Cell(
        scheduler=scheduler,
        workload=workload.name,
        locality={k: r.job_locality for k, r in results.items()},
        gmtt_normalized={k: r.gmtt_s / base.gmtt_s for k, r in results.items()},
        slowdown={k: r.slowdown for k, r in results.items()},
        map_time_normalized={
            k: r.mean_map_s / base.mean_map_s for k, r in results.items()
        },
        results=results,
    )


def fig7_cct(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> List[Fig7Cell]:
    """The 20-node CCT experiments (Fig. 7a-c): FIFO/Fair x wl1/wl2."""
    cells = []
    for wl_name in ("wl1", "wl2"):
        workload = _wl(wl_name, n_jobs, seed)
        for scheduler in ("fifo", "fair"):
            cells.append(_run_cell(CCT_SPEC, scheduler, workload, seed))
    return cells


def fig10_ec2(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> List[Fig7Cell]:
    """The 100-node EC2 experiments (Fig. 10a-c): FIFO/Fair on wl1."""
    workload = _wl("wl1", n_jobs, seed)
    return [
        _run_cell(EC2_SPEC, scheduler, workload, seed)
        for scheduler in ("fifo", "fair")
    ]


def print_fig7(cells: List[Fig7Cell], title: str = "Fig. 7 (20-node CCT)") -> None:
    """Render the three panels as rows."""
    print(title)
    hdr = f"{'cell':<14s}" + "".join(f"{p:>15s}" for p in POLICY_LABELS)
    for metric, panel in [
        ("locality", "(a) data locality"),
        ("gmtt_normalized", "(b) normalized GMTT"),
        ("slowdown", "(c) mean slowdown"),
        ("map_time_normalized", "(V-C) normalized map time"),
    ]:
        print(panel)
        print(hdr)
        for cell in cells:
            vals = getattr(cell, metric)
            row = f"{cell.scheduler}({cell.workload})"
            print(f"{row:<14s}" + "".join(f"{vals[p]:>15.3f}" for p in POLICY_LABELS))


# --------------------------------------------------------------------------
# Figures 8 and 9: sensitivity analyses (wl2, per the captions)
# --------------------------------------------------------------------------


class SweepPoint(NamedTuple):
    """One x-value of a sensitivity sweep, for one scheduler."""

    x: float
    scheduler: str
    locality: float
    blocks_per_job: float


def _sweep(
    workload: Workload,
    schedulers: Sequence[str],
    configs: Sequence[Tuple[float, DareConfig]],
    seed: int,
    cluster_spec: ClusterSpec = CCT_SPEC,
) -> List[SweepPoint]:
    points = []
    for scheduler in schedulers:
        for x, dare in configs:
            cfg = ExperimentConfig(
                cluster_spec=cluster_spec, scheduler=scheduler, dare=dare, seed=seed
            )
            r = run_experiment(cfg, workload)
            points.append(
                SweepPoint(x, scheduler, r.job_locality, r.blocks_created_per_job)
            )
    return points


def fig8a_p_sweep(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepPoint]:
    """Locality and blocks/job vs ElephantTrap p (threshold=1, budget=0.2)."""
    workload = _wl("wl2", n_jobs, seed)
    configs = [
        (
            p,
            DareConfig.off()
            if p == 0.0
            else DareConfig.elephant_trap(p=p, threshold=1, budget=0.2),
        )
        for p in p_values
    ]
    return _sweep(workload, ("fifo", "fair"), configs, seed)


def fig8b_threshold_sweep(
    thresholds: Sequence[int] = (1, 2, 3, 4, 5),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.5,
) -> List[SweepPoint]:
    """Locality and blocks/job vs aging threshold (p=0.9; the paper's
    caption uses budget=0.5).

    At the caption's generous budget evictions are rare and the sweep is
    flat — consistent with the paper's conclusion that DARE "is not too
    sensitive to changes in the threshold parameter".  Pass a tight
    ``budget`` (e.g. 0.1) to surface the mechanism the paper describes:
    higher thresholds evict slightly too eagerly, costing a little
    locality while creating slightly more replicas."""
    workload = _wl("wl2", n_jobs, seed)
    configs = [
        (float(t), DareConfig.elephant_trap(p=0.9, threshold=t, budget=budget))
        for t in thresholds
    ]
    return _sweep(workload, ("fifo", "fair"), configs, seed)


def fig9a_budget_sweep_lru(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepPoint]:
    """Locality and blocks/job vs budget under greedy LRU (Fig. 9a)."""
    workload = _wl("wl2", n_jobs, seed)
    configs = [
        (b, DareConfig.off() if b == 0.0 else DareConfig.greedy_lru(budget=b))
        for b in budgets
    ]
    return _sweep(workload, ("fifo", "fair"), configs, seed)


def fig9b_budget_sweep_et(
    budgets: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    p_values: Sequence[float] = (0.3, 0.9),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> Dict[float, List[SweepPoint]]:
    """Locality and blocks/job vs budget under ElephantTrap (Fig. 9b)."""
    workload = _wl("wl2", n_jobs, seed)
    out = {}
    for p in p_values:
        configs = [
            (
                b,
                DareConfig.off()
                if b == 0.0
                else DareConfig.elephant_trap(p=p, threshold=1, budget=b),
            )
            for b in budgets
        ]
        out[p] = _sweep(workload, ("fifo", "fair"), configs, seed)
    return out


def sweep_point_from_trace(path: str, x: Optional[float] = None) -> SweepPoint:
    """Rebuild one :class:`SweepPoint` from a ``run --trace`` JSONL file.

    A figure built this way carries replayable provenance: the trace *is*
    the measurement, and ``python -m repro replay verify`` proves it equals
    what the live run saw.  ``x`` defaults to the budget recorded in the
    trace's ``run.config`` header.
    """
    from repro.replay import load_trace, reconstruct

    index = load_trace(path)
    state = reconstruct(index, strict=False)
    config = index.config
    scheduler = str(config.data["scheduler"]) if config is not None else ""
    if x is None:
        x = float(config.data.get("budget", 0.0)) if config is not None else 0.0
    return SweepPoint(
        x=x,
        scheduler=scheduler,
        locality=state.job_locality(),
        blocks_per_job=state.blocks_created / max(1, len(state.jobs)),
    )


def sweep_from_traces(
    paths: Sequence[str], xs: Optional[Sequence[float]] = None
) -> List[SweepPoint]:
    """Sweep points from a set of traces, one per x-value, in path order."""
    if xs is None:
        xs = [None] * len(paths)
    if len(xs) != len(paths):
        raise ValueError("xs and paths must have the same length")
    return [sweep_point_from_trace(p, x) for p, x in zip(paths, xs)]


def print_sweep(points: List[SweepPoint], xlabel: str) -> None:
    """Render a sensitivity sweep as rows."""
    print(f"{xlabel:>10s} {'scheduler':>10s} {'locality%':>10s} {'blocks/job':>11s}")
    for pt in points:
        print(
            f"{pt.x:>10.2f} {pt.scheduler:>10s} {100 * pt.locality:>10.1f} "
            f"{pt.blocks_per_job:>11.2f}"
        )


# --------------------------------------------------------------------------
# Figure 11: replica-placement uniformity
# --------------------------------------------------------------------------


class Fig11Point(NamedTuple):
    """cv of node popularity indices before/after a DARE run."""

    p: float
    cv_before: float
    cv_after: float


def fig11_uniformity(
    p_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[Fig11Point]:
    """cv of popularity indices vs p (wl1, FIFO, budget=0.2, threshold=1)."""
    workload = _wl("wl1", n_jobs, seed)
    points = []
    for p in p_values:
        dare = (
            DareConfig.off()
            if p == 0.0
            else DareConfig.elephant_trap(p=p, threshold=1, budget=0.2)
        )
        cfg = ExperimentConfig(
            cluster_spec=CCT_SPEC, scheduler="fifo", dare=dare, seed=seed
        )
        r = run_experiment(cfg, workload)
        points.append(Fig11Point(p, r.cv_before, r.cv_after))
    return points
