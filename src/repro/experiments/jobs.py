"""The job manager: many clients' grids multiplexed onto one work queue.

This is the bridge between the async HTTP front door
(:mod:`repro.server`) and the process-pool/queue world of
:mod:`repro.experiments.sweep` and :mod:`repro.experiments.service`.
The server thread hands :class:`JobManager` parsed submissions; the
manager turns each into a :class:`Job` — a list of content-addressed
:class:`~repro.experiments.sweep.SweepCell` s — and enqueues the cells
onto a single shared :class:`~repro.experiments.service.WorkQueue`:

* **Cells deduplicate across jobs.**  Two clients submitting overlapping
  grids share the overlapping cells' single execution (the queue is
  keyed by :func:`~repro.experiments.sweep.cache_key`), and every
  completion fans out to every job that contains the cell.
* **Cache pre-resolution.**  Submission resolves every cell it can from
  the :class:`~repro.experiments.sweep.ResultCache` before any executor
  touches it, exactly like ``run_cells`` does — a warm grid completes at
  submit time with zero ``run_experiment`` calls.
* **Idempotent submissions.**  A job's identity is a digest of its
  cells' cache keys (or an explicit client ``idempotency_key``);
  re-submitting an in-flight or finished grid returns the existing job
  instead of queueing a duplicate.
* **Executor threads** lease cells from the queue and run each one
  through :func:`~repro.experiments.sweep.run_cells` — in a worker
  *process* by default (``isolation='process'``: crash retry and
  ``cell_timeout_s`` apply), or in-thread (``isolation='thread'``, used
  by tests and by trace-streaming jobs, whose tracer records fan out to
  the job's :class:`~repro.observability.stream.RecordStream`).
* **Bounded backlog.**  At most ``max_queued_jobs`` jobs may be active;
  beyond that submissions are rejected with a 503-shaped
  :class:`JobRejected` so the API edge can push back instead of queueing
  unboundedly.

Every job carries a bounded :class:`RecordStream` of progress ticks,
per-cell outcomes, and (for streaming jobs) trace-bus records — the
substrate the server's SSE endpoint reads.  Restart journaling lives in
:mod:`repro.server.jobstore`; the manager only exposes :meth:`adopt` for
replaying journaled submissions into a fresh queue, where the result
cache makes re-enqueued warm cells resolve instantly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.experiments.serialize import canonical_json, result_to_dict
from repro.experiments.service import (
    DONE,
    PENDING,
    QUARANTINED,
    WorkQueue,
    cell_from_doc,
    cell_to_doc,
)
from repro.experiments.sweep import (
    CellOutcome,
    ResultCache,
    SweepCell,
    build_grid,
    cache_key,
    run_cells,
)
from repro.observability.stream import RecordStream

#: job lifecycle states
RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: fields a submission document may carry
_SPEC_FIELDS = frozenset(
    {"grid", "n_jobs", "seed", "cells", "check_invariants", "stream",
     "idempotency_key"}
)


class JobRejected(Exception):
    """A submission the API edge must refuse, with its HTTP status."""

    def __init__(self, status: int, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


def parse_job_spec(doc: object) -> Tuple[List[SweepCell], Dict]:
    """Validate one submission document into (cells, normalized spec).

    Accepts either a named grid (``{"grid": "smoke", "n_jobs": 8}``) or
    explicit cells (``{"cells": [...]}`` in ``cell_to_doc`` form).
    Raises :class:`JobRejected` (400-shaped) on anything malformed —
    unknown fields are rejected outright so typos fail loudly.
    """
    if not isinstance(doc, dict):
        raise JobRejected(400, "request body must be a JSON object")
    unknown = sorted(set(doc) - _SPEC_FIELDS)
    if unknown:
        raise JobRejected(400, f"unknown field(s): {', '.join(unknown)}")
    spec: Dict = {
        "grid": doc.get("grid", "smoke"),
        "n_jobs": doc.get("n_jobs", 200),
        "seed": doc.get("seed", 20110926),
        "check_invariants": bool(doc.get("check_invariants", False)),
        "stream": bool(doc.get("stream", False)),
    }
    if "cells" in doc:
        if not isinstance(doc["cells"], list) or not doc["cells"]:
            raise JobRejected(400, "'cells' must be a non-empty list")
        spec["grid"] = "custom"
        try:
            cells = [cell_from_doc(d) for d in doc["cells"]]
        except Exception:
            raise JobRejected(
                400,
                "malformed cell document: "
                + traceback.format_exc(limit=0).strip().splitlines()[-1],
            )
    else:
        if not isinstance(spec["grid"], str):
            raise JobRejected(400, "'grid' must be a string")
        if not isinstance(spec["n_jobs"], int) or isinstance(spec["n_jobs"], bool) \
                or not 1 <= spec["n_jobs"] <= 100_000:
            raise JobRejected(400, "'n_jobs' must be an integer in [1, 100000]")
        if not isinstance(spec["seed"], int) or isinstance(spec["seed"], bool):
            raise JobRejected(400, "'seed' must be an integer")
        try:
            cells = build_grid(spec["grid"], n_jobs=spec["n_jobs"], seed=spec["seed"])
        except ValueError as exc:
            raise JobRejected(400, str(exc))
    if spec["check_invariants"]:
        cells = [
            c._replace(config=dataclasses.replace(c.config, check_invariants=True))
            for c in cells
        ]
    return cells, spec


@dataclass
class Job:
    """One client submission: a list of cells tracked through the queue."""

    id: str
    idempotency_key: str
    spec: Dict
    cells: List[SweepCell]
    keys: List[str]
    state: str = RUNNING
    error: str = ""
    created: float = 0.0
    finished: float = 0.0
    #: bounded event ring the SSE layer reads (progress/cell/trace/done)
    stream: RecordStream = field(default_factory=RecordStream, repr=False)

    def __post_init__(self) -> None:
        self.key_set = frozenset(self.keys)

    @property
    def active(self) -> bool:
        """True while the job still has cells in flight."""
        return self.state == RUNNING

    def to_doc(self) -> Dict:
        """The journal-safe submission record (no runtime state)."""
        return {
            "id": self.id,
            "idempotency_key": self.idempotency_key,
            "spec": self.spec,
            "cells": [cell_to_doc(c) for c in self.cells],
            "keys": self.keys,
            "created": self.created,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "Job":
        return cls(
            id=doc["id"],
            idempotency_key=doc["idempotency_key"],
            spec=doc["spec"],
            cells=[cell_from_doc(d) for d in doc["cells"]],
            keys=list(doc["keys"]),
            created=doc.get("created", 0.0),
        )


def job_identity(keys: List[str], spec: Dict) -> str:
    """The default idempotency key: a digest of the cells + options."""
    doc = {"keys": sorted(keys), "stream": bool(spec.get("stream", False))}
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


class JobManager:
    """Executes submitted jobs over one shared WorkQueue + ResultCache."""

    def __init__(
        self,
        cache: Union[ResultCache, str, Path, None] = None,
        workers: int = 2,
        isolation: str = "process",
        max_queued_jobs: int = 16,
        max_cells_per_job: int = 512,
        cell_timeout_s: Optional[float] = None,
        lease_s: float = 3600.0,
        max_attempts: int = 2,
        stream_capacity: int = 4096,
        journal: Optional[object] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if isolation not in ("process", "thread"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.isolation = isolation
        self.workers = workers
        self.max_queued_jobs = max_queued_jobs
        self.max_cells_per_job = max_cells_per_job
        self.cell_timeout_s = cell_timeout_s
        self.stream_capacity = stream_capacity
        self.journal = journal  # anything with .append(doc); see server.jobstore
        self._clock = clock
        self._lock = threading.RLock()
        # steal-free queue: in-process executors cannot crash independently
        # of the manager, so speculative duplicates would only waste CPU
        self.queue = WorkQueue(
            lease_s=lease_s,
            max_attempts=max_attempts,
            backoff_s=0.2,
            backoff_cap_s=5.0,
            max_leases=1,
            clock=clock,
        )
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self._by_identity: Dict[str, str] = {}
        self.draining = False
        self.started = clock()
        #: cells this manager actually executed (0 for a fully warm grid)
        self.cells_executed = 0
        self._seq = 0
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._current: Dict[str, Optional[Dict]] = {}

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the executor threads."""
        for n in range(self.workers):
            name = f"exec-{n}"
            self._current[name] = None
            thread = threading.Thread(
                target=self._executor_loop, args=(name,), name=name, daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return self

    def drain(self) -> None:
        """Refuse new submissions; in-flight cells still land."""
        with self._lock:
            self.draining = True

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain, stop the executors, and wait for in-flight cells."""
        self.drain()
        self._stop.set()
        self._wake.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # -- submission ------------------------------------------------------------

    def submit(self, doc: object) -> Tuple[Job, bool]:
        """Accept one submission; returns ``(job, created)``.

        ``created=False`` means the idempotency key matched an existing
        job (the caller should answer 200, not 202).  Raises
        :class:`JobRejected` for malformed specs (400), oversized grids
        (413), a draining server or a full backlog (503).
        """
        cells, spec = parse_job_spec(doc)
        if len(cells) > self.max_cells_per_job:
            raise JobRejected(
                413,
                f"grid has {len(cells)} cells; this server accepts at most "
                f"{self.max_cells_per_job} per job",
            )
        keys = [cache_key(c.config, c.workload) for c in cells]
        identity = ""
        if isinstance(doc, dict) and doc.get("idempotency_key"):
            identity = str(doc["idempotency_key"])
        if not identity:
            identity = job_identity(keys, spec)
        with self._lock:
            if self.draining:
                raise JobRejected(503, "server is draining", retry_after_s=30.0)
            existing_id = self._by_identity.get(identity)
            if existing_id is not None:
                existing = self.jobs[existing_id]
                if existing.state != JOB_FAILED:
                    return existing, False
                self._reset_failed(existing)
                return existing, False
            active = sum(1 for j in self.jobs.values() if j.active)
            if active >= self.max_queued_jobs:
                raise JobRejected(
                    503,
                    f"job backlog is full ({active} active jobs)",
                    retry_after_s=5.0,
                )
            self._seq += 1
            job = Job(
                id=f"j{self._seq:04d}-{identity[:12]}",
                idempotency_key=identity,
                spec=spec,
                cells=cells,
                keys=keys,
                created=self._clock(),
                stream=RecordStream(self.stream_capacity),
            )
            self._register(job)
            if self.journal is not None:
                self.journal.append({"event": "submit", "job": job.to_doc()})
            self._enqueue(job)
        self._wake.set()
        return job, True

    def adopt(self, job: Job, state: str) -> None:
        """Re-create a journaled job after a restart (before serving).

        Finished jobs keep their terminal state — their result documents
        rebuild from the cache on demand.  Unfinished jobs re-enqueue;
        cache pre-resolution makes the already-computed prefix instant.
        """
        with self._lock:
            job.stream = RecordStream(self.stream_capacity)
            self._seq = max(self._seq, int(job.id[1:5]))
            self._register(job)
            if state in (JOB_DONE, JOB_FAILED):
                job.state = state
                job.stream.close()
                return
            self._enqueue(job)
        self._wake.set()

    def _register(self, job: Job) -> None:
        self.jobs[job.id] = job
        self.order.append(job.id)
        self._by_identity[job.idempotency_key] = job.id

    def _enqueue(self, job: Job) -> None:
        """Add the job's cells to the queue and pre-resolve cache hits."""
        job.state = RUNNING
        job.error = ""
        self.queue.add_cells(job.cells)
        if self.cache is not None:
            for key in job.keys:
                entry = self.queue.entries[key]
                if entry.state != PENDING:
                    continue
                if entry.cell["config"].get("trace_path"):
                    continue  # must really run so the trace gets written
                hit = self.cache.load(key)
                if hit is not None:
                    self.queue.mark_cached(key, result_to_dict(hit))
        job.stream.publish("job", {"id": job.id, "state": job.state})
        self._refresh_job(job)

    def _reset_failed(self, job: Job) -> None:
        """Re-arm a failed job's quarantined cells for a retry submission."""
        now = self._clock()
        for key in job.keys:
            entry = self.queue.entries.get(key)
            if entry is not None and entry.state == QUARANTINED:
                entry.state = PENDING
                entry.attempts = 0
                entry.error = ""
                entry.not_before = now
        job.stream = RecordStream(self.stream_capacity)
        self._enqueue(job)
        self._wake.set()

    # -- execution -------------------------------------------------------------

    def _executor_loop(self, name: str) -> None:
        while not self._stop.is_set():
            with self._lock:
                reply = self.queue.lease(name)
            if reply.get("done") or reply.get("wait"):
                # idle: wait for a submission (or backoff expiry) to wake us
                retry = min(0.2, float(reply.get("retry_s", 0.2)) or 0.2)
                self._wake.wait(retry)
                self._wake.clear()
                continue
            key = reply["key"]
            lease_id = reply["lease_id"]
            cell = cell_from_doc(reply["cell"])
            with self._lock:
                streams = [
                    job.stream
                    for job in self.jobs.values()
                    if job.active and key in job.key_set and job.spec.get("stream")
                ]
                for job in self.jobs.values():
                    if job.active and key in job.key_set:
                        job.stream.publish("cell", {
                            "phase": "started", "key": key,
                            "tag": cell.tag, "worker": name,
                        })
                self._current[name] = {"key": key, "tag": cell.tag}
            try:
                outcome = self._execute(cell, key, streams)
            finally:
                self._current[name] = None
            with self._lock:
                if outcome.ok:
                    self.queue.complete(
                        key, lease_id, result_to_dict(outcome.result),
                        worker=name, cached=outcome.from_cache,
                    )
                else:
                    self.queue.fail(key, lease_id, outcome.error)
                entry = self.queue.entries.get(key)
                cell_state = entry.state if entry is not None else "unknown"
                for job in list(self.jobs.values()):
                    if not job.active or key not in job.key_set:
                        continue
                    job.stream.publish("cell", {
                        "phase": "finished", "key": key, "tag": cell.tag,
                        "ok": outcome.ok, "state": cell_state,
                        "from_cache": outcome.from_cache,
                        "duration_s": round(outcome.duration_s, 6),
                        "error": _last_line(outcome.error),
                    })
                    self._refresh_job(job)

    def _execute(self, cell: SweepCell, key: str, streams: List[RecordStream]):
        """Run one cell; trace-streaming cells run in-process with a tracer."""
        self.cells_executed += 1
        if streams:
            return self._execute_streaming(cell, key, streams)
        jobs = 1 if self.isolation == "thread" else 2
        timeout = self.cell_timeout_s if jobs > 1 else None
        [outcome] = run_cells(
            [cell], jobs=jobs, cache=self.cache, timeout_s=timeout
        )
        return outcome

    def _execute_streaming(
        self, cell: SweepCell, key: str, streams: List[RecordStream]
    ):
        """In-process execution with trace-bus fan-out to the job streams."""
        from repro.experiments.runner import run_experiment
        from repro.observability.trace import Tracer

        tracer = Tracer(engine_events=False)

        def fan_out(record) -> None:
            doc = {"type": record.type, "t": record.time, "data": dict(record.data)}
            for stream in streams:
                stream.publish("trace", doc)

        tracer.subscribe(fan_out)
        started = time.perf_counter()
        try:
            workload = cell.workload.materialize()
            result = run_experiment(cell.config, workload, tracer=tracer)
        except Exception:
            return CellOutcome(
                cell, None, error=traceback.format_exc(), key=key,
                duration_s=time.perf_counter() - started,
            )
        if self.cache is not None:
            self.cache.store(key, result_to_dict(result))
        return CellOutcome(
            cell, result, key=key, duration_s=time.perf_counter() - started,
        )

    # -- job state -------------------------------------------------------------

    def _progress(self, job: Job) -> Dict[str, int]:
        done = cached = quarantined = 0
        for key in job.keys:
            entry = self.queue.entries.get(key)
            if entry is None:
                done += 1  # adopted-finished job; queue was rebuilt
                continue
            if entry.state == DONE:
                done += 1
                if entry.from_cache:
                    cached += 1
            elif entry.state == QUARANTINED:
                quarantined += 1
        return {
            "total": len(job.keys),
            "done": done,
            "cached": cached,
            "failed": quarantined,
        }

    def _refresh_job(self, job: Job) -> None:
        """Publish progress; settle the job if every cell is terminal."""
        progress = self._progress(job)
        job.stream.publish("progress", progress)
        if progress["done"] + progress["failed"] < progress["total"]:
            return
        if progress["failed"]:
            job.state = JOB_FAILED
            lines = []
            for key in job.keys:
                entry = self.queue.entries.get(key)
                if entry is not None and entry.state == QUARANTINED:
                    lines.append(f"{entry.cell['tag'] or key[:12]}: "
                                 f"{_last_line(entry.error)}")
            job.error = "; ".join(lines)
        else:
            job.state = JOB_DONE
        job.finished = self._clock()
        if self.journal is not None:
            self.journal.append({
                "event": "state", "id": job.id,
                "state": job.state, "error": job.error,
            })
        job.stream.publish("job", {"id": job.id, "state": job.state,
                                   "error": job.error})
        job.stream.publish("done", {"id": job.id, "state": job.state})
        job.stream.close()

    # -- documents -------------------------------------------------------------

    def job_status_doc(self, job: Job) -> Dict:
        """The ``GET /api/jobs/{id}`` body: state, progress, per-cell view."""
        with self._lock:
            cells = []
            for cell, key in zip(job.cells, job.keys):
                entry = self.queue.entries.get(key)
                if entry is None:
                    state = DONE if job.state == JOB_DONE else "unknown"
                    cells.append({"tag": cell.tag, "x": cell.x, "key": key,
                                  "state": state, "from_cache": True,
                                  "attempts": 0, "error": ""})
                    continue
                cells.append({
                    "tag": cell.tag, "x": cell.x, "key": key,
                    "state": entry.state, "from_cache": entry.from_cache,
                    "attempts": entry.attempts,
                    "error": _last_line(entry.error),
                })
            return {
                "id": job.id,
                "state": job.state,
                "error": job.error,
                "created": job.created,
                "spec": dict(job.spec),
                "idempotency_key": job.idempotency_key,
                "progress": self._progress(job),
                "events": job.stream.last_seq,
                "cells": cells,
            }

    def job_result_doc(self, job: Job) -> Optional[Dict]:
        """The finished job's outcome document (``--out`` shape, no
        provenance) — byte-identical to the serial ``run_cells`` path for
        the same cells.  None while the job is still running."""
        if job.active:
            return None
        with self._lock:
            cell_docs = []
            for cell, key in zip(job.cells, job.keys):
                result_doc = None
                error = ""
                entry = self.queue.entries.get(key)
                if entry is not None:
                    result_doc = entry.result
                    error = entry.error
                if result_doc is None and self.cache is not None and not error:
                    hit = self.cache.load(key)
                    if hit is not None:
                        result_doc = result_to_dict(hit)
                cell_docs.append({
                    "tag": cell.tag,
                    "x": cell.x,
                    "key": key,
                    "ok": result_doc is not None,
                    "error": error,
                    "result": result_doc,
                })
            return {
                "grid": job.spec.get("grid", ""),
                "n_jobs": job.spec.get("n_jobs", 0),
                "seed": job.spec.get("seed", 0),
                "shard": "",
                "cells": cell_docs,
            }

    def cluster_doc(self) -> Dict:
        """The ``GET /api/cluster`` body: queue/worker/job/cache state."""
        with self._lock:
            states = {RUNNING: 0, JOB_DONE: 0, JOB_FAILED: 0}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            doc = {
                "draining": self.draining,
                "uptime_s": round(max(0.0, self._clock() - self.started), 3),
                "cells_executed": self.cells_executed,
                "queue": self.queue.status_doc(),
                "workers": [
                    {"id": name, "busy": current is not None, "cell": current}
                    for name, current in sorted(self._current.items())
                ],
                "jobs": {
                    "total": len(self.jobs),
                    "running": states[RUNNING],
                    "done": states[JOB_DONE],
                    "failed": states[JOB_FAILED],
                },
            }
            if self.cache is not None:
                doc["cache"] = {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "corrupt": self.cache.corrupt,
                }
            return doc

    def jobs_doc(self) -> List[Dict]:
        """The ``GET /api/jobs`` body: one summary row per job."""
        with self._lock:
            return [
                {
                    "id": job.id,
                    "state": job.state,
                    "grid": job.spec.get("grid", ""),
                    "created": job.created,
                    "progress": self._progress(job),
                }
                for job in (self.jobs[jid] for jid in self.order)
            ]


def _last_line(text: str) -> str:
    lines = text.strip().splitlines()
    return lines[-1] if lines else ""
