"""JSON round-trips for experiment configs and results.

Two jobs:

* **Shipping results across process and run boundaries.**  The sweep
  executor (:mod:`repro.experiments.sweep`) runs cells in worker
  processes and caches their results on disk; both paths move an
  :class:`~repro.experiments.runner.ExperimentResult` through the dict
  forms here.
* **Stable identity.**  :func:`canonical_json` renders a dict with
  sorted keys and no whitespace, so equal results serialize to equal
  bytes and a config's canonical form can be hashed into a cache key.

The round-trip is exact for everything the evaluation reads: floats go
through JSON's repr round-trip (lossless for finite doubles), tuples are
restored from lists, and the metrics collector's task/job records are
rebuilt as their original NamedTuples.  Two fields are deliberately
dropped because they cannot be deterministic: ``engine_wall_s`` (wall
clock) and ``profiler`` (holds live timing samples).  A deserialized
result carries ``engine_wall_s=0.0`` and ``profiler=None``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.baselines.cdrm import CdrmConfig
from repro.baselines.scarlett import ScarlettConfig
from repro.cluster.cluster import ClusterSpec
from repro.cluster.disk import DiskParams
from repro.cluster.network import NetworkParams
from repro.core.config import DareConfig, Policy
from repro.experiments.runner import ExperimentConfig, ExperimentResult
from repro.metrics.collector import JobRecord, MapRecord, MetricsCollector
from repro.metrics.locality import LocalityStats

#: bump when the serialized result layout changes shape
RESULT_FORMAT = 1


def canonical_json(doc: Dict) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# -- ExperimentConfig ---------------------------------------------------------


def cluster_spec_to_dict(spec: ClusterSpec) -> Dict:
    """ClusterSpec (with nested network/disk params) as plain data."""
    d = spec._asdict()
    d["network"] = spec.network._asdict()
    d["disk"] = spec.disk._asdict()
    d["cpu_stall_range"] = list(spec.cpu_stall_range)
    # scale-mode flags are omitted at their defaults so pre-existing specs
    # serialize (and content-address) exactly as before they were added;
    # cluster_spec_from_dict restores absent keys via the NamedTuple
    # defaults
    for flag in ("lite_network", "hb_batch", "mesoscale"):
        if not d[flag]:
            del d[flag]
    return d


def cluster_spec_from_dict(d: Dict) -> ClusterSpec:
    """Inverse of :func:`cluster_spec_to_dict`."""
    d = dict(d)
    d["network"] = NetworkParams(**d["network"])
    d["disk"] = DiskParams(**d["disk"])
    d["cpu_stall_range"] = tuple(d["cpu_stall_range"])
    return ClusterSpec(**d)


def config_to_dict(config: ExperimentConfig) -> Dict:
    """ExperimentConfig as a JSON-serializable dict (exact round-trip).

    The ``model`` and ``rollout`` keys are omitted at their defaults (no
    weights, no rollout) — like the cluster spec's scale flags — so every
    pre-existing config serializes, content-addresses, and traces exactly
    as it did before the learned-policy fields were added.
    """
    dare_dict = {
        "policy": config.dare.policy.value,
        "p": config.dare.p,
        "threshold": config.dare.threshold,
        "budget": config.dare.budget,
    }
    if config.dare.model:
        dare_dict["model"] = list(config.dare.model)
    doc = {
        "cluster_spec": cluster_spec_to_dict(config.cluster_spec),
        "scheduler": config.scheduler,
        "dare": dare_dict,
        "seed": config.seed,
        "replication": config.replication,
        "scarlett": None if config.scarlett is None else config.scarlett._asdict(),
        "cdrm": None if config.cdrm is None else config.cdrm._asdict(),
        "failures": [[t, node] for t, node in config.failures],
        "failure_detection_s": config.failure_detection_s,
        "speculative": config.speculative,
        "fair_delay_s": config.fair_delay_s,
        "trace_path": config.trace_path,
        "trace_engine_events": config.trace_engine_events,
        "check_invariants": config.check_invariants,
        "invariant_sweep_every": config.invariant_sweep_every,
        "profile": config.profile,
        "profile_sample_every": config.profile_sample_every,
    }
    if config.rollout is not None:
        rollout_dict = dict(config.rollout._asdict())
        # jobs is an execution knob (parallel scoring is byte-identical
        # to serial), so like trace_path/profile it never identifies the
        # cell; prune *does* change decisions and is kept when set, but
        # omitted at its default so pre-pruning documents round-trip
        del rollout_dict["jobs"]
        if not rollout_dict["prune"]:
            del rollout_dict["prune"]
        doc["rollout"] = rollout_dict
    return doc


def config_from_dict(d: Dict) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict`."""
    from repro.policies.rollout import RolloutConfig

    dare = d["dare"]
    rollout = d.get("rollout")
    return ExperimentConfig(
        cluster_spec=cluster_spec_from_dict(d["cluster_spec"]),
        scheduler=d["scheduler"],
        dare=DareConfig(
            policy=Policy(dare["policy"]),
            p=dare["p"],
            threshold=dare["threshold"],
            budget=dare["budget"],
            model=tuple(dare.get("model", ())),
        ),
        rollout=None if rollout is None else RolloutConfig(**rollout),
        seed=d["seed"],
        replication=d["replication"],
        scarlett=None if d["scarlett"] is None else ScarlettConfig(**d["scarlett"]),
        cdrm=None if d["cdrm"] is None else CdrmConfig(**d["cdrm"]),
        failures=tuple((float(t), int(node)) for t, node in d["failures"]),
        failure_detection_s=d["failure_detection_s"],
        speculative=d["speculative"],
        fair_delay_s=d["fair_delay_s"],
        # observability-only fields are absent from trace headers (they
        # never affect simulation behaviour): fall back to the defaults
        trace_path=d.get("trace_path", ""),
        trace_engine_events=d["trace_engine_events"],
        check_invariants=d["check_invariants"],
        invariant_sweep_every=d["invariant_sweep_every"],
        profile=d.get("profile", False),
        profile_sample_every=d.get("profile_sample_every", 7),
    )


# -- ExperimentResult ---------------------------------------------------------


def _collector_to_dict(collector: Optional[MetricsCollector]) -> Optional[Dict]:
    if collector is None:
        return None
    return {
        "map_records": [list(rec) for rec in collector.map_records],
        "reduce_durations": list(collector.reduce_durations),
        "job_records": [
            [
                rec.job_id,
                rec.submit_time,
                rec.first_task_time,
                rec.finish_time,
                rec.n_maps,
                rec.n_reduces,
                list(rec.locality_counts),
                rec.input_bytes,
            ]
            for rec in collector.job_records
        ],
    }


def _collector_from_dict(d: Optional[Dict]) -> Optional[MetricsCollector]:
    if d is None:
        return None
    collector = MetricsCollector()
    collector.map_records = [MapRecord(*rec) for rec in d["map_records"]]
    collector.reduce_durations = list(d["reduce_durations"])
    collector.job_records = [
        JobRecord(
            job_id=rec[0],
            submit_time=rec[1],
            first_task_time=rec[2],
            finish_time=rec[3],
            n_maps=rec[4],
            n_reduces=rec[5],
            locality_counts=tuple(rec[6]),
            input_bytes=rec[7],
        )
        for rec in d["job_records"]
    ]
    return collector


def result_to_dict(result: ExperimentResult) -> Dict:
    """ExperimentResult as a JSON-serializable dict.

    ``engine_wall_s`` and ``profiler`` are dropped (wall-clock state);
    everything else round-trips exactly through
    :func:`result_from_dict`.
    """
    return {
        "format": RESULT_FORMAT,
        "config": config_to_dict(result.config),
        "workload": result.workload,
        "n_jobs": result.n_jobs,
        "locality": list(result.locality),
        "job_locality": result.job_locality,
        "gmtt_s": result.gmtt_s,
        "slowdown": result.slowdown,
        "mean_map_s": result.mean_map_s,
        "blocks_created": result.blocks_created,
        "blocks_created_per_job": result.blocks_created_per_job,
        "blocks_evicted": result.blocks_evicted,
        "replication_disk_writes": result.replication_disk_writes,
        "cv_before": result.cv_before,
        "cv_after": result.cv_after,
        "makespan_s": result.makespan_s,
        "traffic_bytes": dict(result.traffic_bytes),
        "blocks_lost_replicas": result.blocks_lost_replicas,
        "data_loss_blocks": result.data_loss_blocks,
        "repairs_completed": result.repairs_completed,
        "tasks_requeued": result.tasks_requeued,
        "scarlett_replicas_created": result.scarlett_replicas_created,
        "cdrm_replicas_created": result.cdrm_replicas_created,
        "speculative_launched": result.speculative_launched,
        "speculative_wasted": result.speculative_wasted,
        "speculative_won": result.speculative_won,
        "trace_records_checked": result.trace_records_checked,
        "invariant_sweeps": result.invariant_sweeps,
        "events_processed": result.events_processed,
        "collector": _collector_to_dict(result.collector),
    }


def result_from_dict(d: Dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    if d.get("format") != RESULT_FORMAT:
        raise ValueError(f"unsupported result format {d.get('format')!r}")
    return ExperimentResult(
        config=config_from_dict(d["config"]),
        workload=d["workload"],
        n_jobs=d["n_jobs"],
        locality=LocalityStats(*d["locality"]),
        job_locality=d["job_locality"],
        gmtt_s=d["gmtt_s"],
        slowdown=d["slowdown"],
        mean_map_s=d["mean_map_s"],
        blocks_created=d["blocks_created"],
        blocks_created_per_job=d["blocks_created_per_job"],
        blocks_evicted=d["blocks_evicted"],
        replication_disk_writes=d["replication_disk_writes"],
        cv_before=d["cv_before"],
        cv_after=d["cv_after"],
        makespan_s=d["makespan_s"],
        traffic_bytes=dict(d["traffic_bytes"]),
        blocks_lost_replicas=d["blocks_lost_replicas"],
        data_loss_blocks=d["data_loss_blocks"],
        repairs_completed=d["repairs_completed"],
        tasks_requeued=d["tasks_requeued"],
        scarlett_replicas_created=d["scarlett_replicas_created"],
        cdrm_replicas_created=d["cdrm_replicas_created"],
        speculative_launched=d["speculative_launched"],
        speculative_wasted=d["speculative_wasted"],
        speculative_won=d["speculative_won"],
        trace_records_checked=d["trace_records_checked"],
        invariant_sweeps=d["invariant_sweeps"],
        events_processed=d["events_processed"],
        engine_wall_s=0.0,
        profiler=None,
        collector=_collector_from_dict(d["collector"]),
    )


def result_to_json(result: ExperimentResult) -> str:
    """Canonical JSON text of a result — equal results, equal bytes."""
    return canonical_json(result_to_dict(result))
