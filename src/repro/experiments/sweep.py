"""Parallel sweep executor with a content-addressed result cache.

The paper's evaluation is a large grid of independent ``run_experiment``
cells (figures 7-11, the sensitivity sweeps, the ablations).  Each cell
is deterministic given its :class:`~repro.experiments.runner.ExperimentConfig`
and workload spec, which makes the grid embarrassingly parallel *and*
perfectly cacheable:

* :func:`run_cells` fans cells out over worker processes (``jobs > 1``)
  or runs them in-process (``jobs == 1``, the byte-identical serial
  path).  Every worker derives all randomness from the cell's own seeds,
  so results do not depend on worker count, scheduling order, or cache
  state.
* :class:`ResultCache` stores each result under a SHA-256 of the cell's
  canonical identity — config + workload spec + ``CACHE_VERSION`` (a
  code-relevant version tag, bumped whenever a simulator change is
  allowed to move results).  Corrupted or truncated entries are treated
  as misses and re-run.  Config fields that cannot change the serialized
  result (``trace_path``, profiler settings) are excluded from the key;
  cells that request a trace file bypass cache *reads* so the trace is
  actually written.
* A worker that raises reports the cell failed with its traceback; a
  worker that *dies* (signal, hard crash) is retried once and then
  marked failed with its exit code — either way the rest of the sweep
  keeps going.  ``timeout_s`` bounds each cell's wall time; a timed-out
  worker is terminated and the cell marked failed.
* :func:`shard_cells` splits a cell list into ``K/M`` round-robin
  shards for CI fan-out; the M shards partition the grid exactly.

``python -m repro sweep`` exposes all of this on the command line.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing as mp
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.experiments.serialize import (
    canonical_json,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.workloads.swim import Workload

#: the code-relevant version tag mixed into every cache key.  Bump this
#: whenever a simulator change is *allowed* to alter experiment results;
#: stale entries then simply never match again.
CACHE_VERSION = 2

#: seed used throughout the reproduction (same as figures.DEFAULT_SEED,
#: duplicated here to keep the import graph acyclic)
DEFAULT_SEED = 20110926

#: config fields that cannot change the serialized result — excluded
#: from the cache key so e.g. tracing to a different path still hits
_KEY_EXCLUDED_FIELDS = ("trace_path", "profile", "profile_sample_every")

#: per-process counter making cache temp-file names unique across threads
_tmp_seq = itertools.count()


class WorkloadSpec(NamedTuple):
    """A workload by recipe, not by object.

    Cells carry this instead of a materialized
    :class:`~repro.workloads.swim.Workload` so they can be hashed into
    cache keys and rebuilt inside worker processes.  ``kind`` is
    ``'wl1'``/``'wl2'`` (synthesized from ``seed``/``n_jobs``) or
    ``'file'`` (a saved ``.json`` workload or SWIM ``.tsv`` trace at
    ``path``; identity is the file's content hash).
    """

    kind: str
    n_jobs: int = 500
    seed: int = DEFAULT_SEED
    path: str = ""

    def materialize(self) -> Workload:
        """Build the workload. Deterministic: same spec, same workload."""
        import numpy as np

        if self.kind == "wl1" or self.kind == "wl2":
            from repro.workloads.swim import synthesize_wl1, synthesize_wl2

            synth = synthesize_wl1 if self.kind == "wl1" else synthesize_wl2
            return synth(np.random.default_rng(self.seed), n_jobs=self.n_jobs)
        if self.kind == "file":
            if self.path.endswith(".json"):
                from repro.workloads.swim_io import load_workload

                return load_workload(self.path)
            from repro.workloads.swim_io import load_swim_trace

            return load_swim_trace(self.path, np.random.default_rng(self.seed))
        raise ValueError(f"unknown workload kind {self.kind!r}")

    def describe(self) -> Dict:
        """Identity dict for cache keys (content hash for file workloads)."""
        if self.kind == "file":
            sha = hashlib.sha256(Path(self.path).read_bytes()).hexdigest()
            return {"kind": "file", "seed": self.seed, "sha256": sha}
        return {"kind": self.kind, "n_jobs": self.n_jobs, "seed": self.seed}


class SweepCell(NamedTuple):
    """One executable cell of a sweep grid."""

    config: ExperimentConfig
    workload: WorkloadSpec
    #: display label for progress/report lines (not part of the identity)
    tag: str = ""
    #: the sweep's x-coordinate, for sensitivity-curve assembly
    x: float = 0.0

    def label(self) -> str:
        """Human-readable cell name."""
        return self.tag or f"{self.workload.kind}/{self.config.label()}"


def cache_key(config: ExperimentConfig, workload: WorkloadSpec) -> str:
    """Content-addressed identity of one cell's result."""
    cfg = config_to_dict(config)
    for name in _KEY_EXCLUDED_FIELDS:
        cfg.pop(name)
    doc = {
        "cache_version": CACHE_VERSION,
        "config": cfg,
        "workload": workload.describe(),
    }
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


class ResultCache:
    """On-disk result store addressed by :func:`cache_key`.

    Entries are canonical-JSON files under ``root/<key[:2]>/<key>.json``,
    written atomically (unique temp file + ``os.replace``) so a crashed
    writer can at worst leave a truncated temp file, never a corrupt
    entry.  Concurrent writers of the same key — two sweep-service
    workers finishing the same cell, or two coordinator handler threads
    — are last-writer-wins: every writer renames its own private temp
    file over the entry, so readers only ever observe one complete
    version or none.  Anything unreadable or unparsable loads as a miss
    and is re-run.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path(self, key: str) -> Path:
        """Entry path for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[ExperimentResult]:
        """The cached result, or None on miss/corruption."""
        try:
            text = self.path(key).read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            result = result_from_dict(json.loads(text))
        except Exception:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result_doc: Dict) -> Path:
        """Atomically write one serialized result; returns its path.

        The temp name is unique per (process, call): same-key races —
        whether across processes or across threads sharing a pid — each
        write a private file and rename it into place, so the entry is
        always one writer's complete bytes (last writer wins).
        """
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{key}.{os.getpid()}.{next(_tmp_seq)}.tmp")
        try:
            tmp.write_text(canonical_json(result_doc) + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)  # only survives if the write failed
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        try:
            self.path(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))


@dataclass
class CellOutcome:
    """What happened to one cell: a result, a cache hit, or a failure."""

    cell: SweepCell
    result: Optional[ExperimentResult]
    error: str = ""
    from_cache: bool = False
    duration_s: float = 0.0
    key: str = ""

    @property
    def ok(self) -> bool:
        """True when the cell produced a result."""
        return self.result is not None


class SweepError(RuntimeError):
    """Raised by :func:`results_of` when any cell failed."""


def results_of(outcomes: Sequence[CellOutcome]) -> List[ExperimentResult]:
    """Unwrap outcomes into results, raising :class:`SweepError` on failures."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        lines = []
        for o in failed:
            last = o.error.strip().splitlines()[-1] if o.error else "unknown error"
            lines.append(f"  - {o.cell.label()}: {last}")
        raise SweepError(
            f"{len(failed)} of {len(outcomes)} sweep cell(s) failed:\n"
            + "\n".join(lines)
        )
    return [o.result for o in outcomes]


def outcomes_to_doc(
    outcomes: Sequence[CellOutcome],
    grid: str = "",
    n_jobs: int = 0,
    seed: int = DEFAULT_SEED,
    shard: str = "",
    provenance: bool = True,
) -> Dict:
    """The sweep's outcome document (``repro sweep --out`` / the server).

    One serializer shared by every consumer, so the CLI's ``--out`` file,
    the server's ``GET /api/jobs/{id}/result`` body, and test comparators
    all agree byte-for-byte.  ``provenance=False`` drops the
    ``from_cache`` flag — execution provenance that depends on cache
    warmth, not on the cells — leaving a document fully determined by
    the cell identities, so a cached re-serve is byte-identical to the
    cold run that populated the cache.
    """
    cells = []
    for o in outcomes:
        cell_doc = {
            "tag": o.cell.tag,
            "x": o.cell.x,
            "key": o.key,
            "ok": o.ok,
            "error": o.error,
            "result": None if o.result is None else result_to_dict(o.result),
        }
        if provenance:
            cell_doc["from_cache"] = o.from_cache
        cells.append(cell_doc)
    return {
        "grid": grid,
        "n_jobs": n_jobs,
        "seed": seed,
        "shard": shard,
        "cells": cells,
    }


def doc_to_text(doc: Dict) -> str:
    """Render an outcome document exactly as ``--out`` writes it."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


#: progress callback: (outcome, cells done, cells total, ETA seconds)
ProgressFn = Callable[[CellOutcome, int, int, float], None]


def print_progress(
    outcome: CellOutcome,
    done: int,
    total: int,
    eta_s: float,
    cache: Optional[ResultCache] = None,
) -> None:
    """Default progress reporter: one stderr line per finished cell.

    With a ``cache``, each line also carries the running hit/miss tally,
    so a long sweep shows how much of the grid is being reused as it goes.
    """
    if outcome.from_cache:
        status = "cached"
    elif outcome.ok:
        status = "ok"
    else:
        status = "FAILED"
    eta = f"  eta {eta_s:5.0f}s" if eta_s >= 0.5 else ""
    tally = f"  cache {cache.hits}h/{cache.misses}m" if cache is not None else ""
    print(
        f"[{done}/{total}] {outcome.cell.label():<44s} {status:>6s}"
        f" {outcome.duration_s:7.2f}s{eta}{tally}",
        file=sys.stderr,
        flush=True,
    )


def cache_progress(cache: Optional[ResultCache]) -> ProgressFn:
    """A :func:`print_progress` bound to a cache's live hit/miss counters."""

    def report(outcome: CellOutcome, done: int, total: int, eta_s: float) -> None:
        print_progress(outcome, done, total, eta_s, cache=cache)

    return report


# -- the executor -------------------------------------------------------------


def _worker_main(conn, config_dict: Dict, workload_tuple: Tuple) -> None:
    """Child-process entry: run one cell, ship the serialized result back.

    All randomness is derived from the config/workload seeds, never from
    inherited process state, so the result is independent of which worker
    runs the cell.
    """
    try:
        config = config_from_dict(config_dict)
        workload = WorkloadSpec(*workload_tuple).materialize()
        result = run_experiment(config, workload)
        conn.send(("ok", result_to_dict(result)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _stop(proc: mp.process.BaseProcess) -> None:
    """Terminate (then kill) a worker and reap it."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=2.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2.0)


@dataclass
class _Running:
    proc: mp.process.BaseProcess
    conn: object
    started: float = field(default_factory=time.perf_counter)


def run_cells(
    cells: Iterable[SweepCell],
    jobs: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    no_cache: bool = False,
    timeout_s: Optional[float] = None,
    crash_retries: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[CellOutcome]:
    """Run every cell, in input order, and return one outcome per cell.

    ``jobs == 1`` executes in-process (identical to calling
    ``run_experiment`` in a loop); ``jobs > 1`` fans out over worker
    processes.  ``cache`` may be a :class:`ResultCache` or a directory
    path; ``no_cache`` disables it entirely.  ``timeout_s`` bounds each
    cell's wall time (workers only).  A crashed worker is retried
    ``crash_retries`` times before its cell is marked failed; a worker
    that raises a Python exception fails immediately with the traceback.
    """
    cells = list(cells)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if no_cache:
        cache = None

    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    keys = [cache_key(c.config, c.workload) for c in cells]
    done = 0
    run_durations: List[float] = []

    def finish(i: int, outcome: CellOutcome) -> None:
        nonlocal done
        outcomes[i] = outcome
        done += 1
        if outcome.ok and not outcome.from_cache:
            run_durations.append(outcome.duration_s)
        if progress is not None:
            mean = sum(run_durations) / len(run_durations) if run_durations else 0.0
            eta = mean * (total - done) / max(1, jobs)
            progress(outcome, done, total, eta)

    pending: List[int] = []
    for i, cell in enumerate(cells):
        # a cell that writes a trace must actually run, so skip cache reads
        if cache is not None and not cell.config.trace_path:
            hit = cache.load(keys[i])
            if hit is not None:
                finish(i, CellOutcome(cell, hit, from_cache=True, key=keys[i]))
                continue
        pending.append(i)

    if jobs <= 1:
        memo: Dict[WorkloadSpec, Workload] = {}
        for i in pending:
            cell = cells[i]
            started = time.perf_counter()
            try:
                if cell.workload not in memo:
                    memo[cell.workload] = cell.workload.materialize()
                result = run_experiment(cell.config, memo[cell.workload])
            except Exception:
                finish(i, CellOutcome(
                    cell, None, error=traceback.format_exc(), key=keys[i],
                    duration_s=time.perf_counter() - started,
                ))
                continue
            if cache is not None:
                cache.store(keys[i], result_to_dict(result))
            finish(i, CellOutcome(
                cell, result, key=keys[i],
                duration_s=time.perf_counter() - started,
            ))
        return outcomes  # type: ignore[return-value]

    ctx = mp.get_context()
    queue: List[int] = list(pending)
    attempts: Dict[int, int] = {i: 0 for i in pending}
    running: Dict[int, _Running] = {}
    try:
        while queue or running:
            while queue and len(running) < jobs:
                i = queue.pop(0)
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        send_conn,
                        config_to_dict(cells[i].config),
                        tuple(cells[i].workload),
                    ),
                    daemon=True,
                )
                proc.start()
                send_conn.close()
                running[i] = _Running(proc, recv_conn)
            _conn_wait([r.conn for r in running.values()], timeout=0.1)
            now = time.perf_counter()
            for i, r in list(running.items()):
                msg = None
                if r.conn.poll():
                    try:
                        msg = r.conn.recv()
                    except (EOFError, OSError):
                        msg = None  # died mid-send: treat as a crash
                elif r.proc.is_alive():
                    if timeout_s is not None and now - r.started > timeout_s:
                        _stop(r.proc)
                        r.conn.close()
                        del running[i]
                        finish(i, CellOutcome(
                            cells[i], None, key=keys[i],
                            error=(f"cell timed out after {timeout_s:g}s "
                                   "and was terminated"),
                            duration_s=now - r.started,
                        ))
                    continue
                duration = now - r.started
                r.conn.close()
                r.proc.join(timeout=5.0)
                exitcode = r.proc.exitcode
                _stop(r.proc)
                del running[i]
                if msg is None:  # dead worker, no report
                    attempts[i] += 1
                    if attempts[i] <= crash_retries:
                        queue.append(i)
                    else:
                        finish(i, CellOutcome(
                            cells[i], None, key=keys[i],
                            error=(f"worker died (exit code {exitcode}) "
                                   f"on {attempts[i]} attempt(s)"),
                            duration_s=duration,
                        ))
                elif msg[0] == "ok":
                    if cache is not None:
                        cache.store(keys[i], msg[1])
                    finish(i, CellOutcome(
                        cells[i], result_from_dict(msg[1]), key=keys[i],
                        duration_s=duration,
                    ))
                else:
                    finish(i, CellOutcome(
                        cells[i], None, error=msg[1], key=keys[i],
                        duration_s=duration,
                    ))
    finally:
        for r in running.values():
            _stop(r.proc)
            r.conn.close()
    return outcomes  # type: ignore[return-value]


# -- prefix-sharing fork cells ------------------------------------------------


class ForkCell(NamedTuple):
    """A what-if cell: one base run forked at ``fork_time`` under a patch.

    Grids of fork cells that share (config, workload, fork_time) also
    share their entire simulated prefix: :func:`run_fork_cells` runs the
    base simulation up to the divergence time once, snapshots it, and
    forks every cell from the checkpoint instead of re-simulating the
    prefix per cell.  ``patch`` is a :func:`repro.checkpoint.parse_patch`
    spec (empty = plain resume, the control cell).
    """

    config: ExperimentConfig
    workload: WorkloadSpec
    fork_time: float
    patch: str = ""
    #: display label for progress/report lines (not part of the identity)
    tag: str = ""
    #: the sweep's x-coordinate, for sensitivity-curve assembly
    x: float = 0.0

    def label(self) -> str:
        """Human-readable cell name."""
        if self.tag:
            return self.tag
        base = f"{self.workload.kind}/{self.config.label()}@{self.fork_time:g}s"
        return f"{base}+{self.patch}" if self.patch else base


def fork_cache_key(cell: ForkCell) -> str:
    """Content-addressed identity of one fork cell's result."""
    cfg = config_to_dict(cell.config)
    for name in _KEY_EXCLUDED_FIELDS:
        cfg.pop(name)
    doc = {
        "cache_version": CACHE_VERSION,
        "config": cfg,
        "workload": cell.workload.describe(),
        "fork_time": cell.fork_time,
        "patch": cell.patch,
    }
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


def run_fork_cells(
    cells: Iterable[ForkCell],
    cache: Union[ResultCache, str, Path, None] = None,
    no_cache: bool = False,
    progress: Optional[ProgressFn] = None,
    share_prefix: bool = True,
) -> List[CellOutcome]:
    """Run every fork cell, sharing simulated prefixes via checkpoints.

    Cells are grouped by (base config, workload, fork_time); each group's
    prefix is simulated once, snapshotted, and forked per cell.  Because a
    forked run is byte-identical to a cold run paused at the same time,
    the results are exactly those of ``share_prefix=False`` (the cold
    comparator, which re-simulates the prefix for every cell) — only the
    wall clock differs.  Runs serially: the fan-out worker pool would
    have to re-pickle the snapshot per cell, forfeiting the sharing.
    """
    import dataclasses

    from repro.checkpoint import parse_patch
    from repro.checkpoint.snapshot import snapshot as take_snapshot
    from repro.experiments.runner import Simulation, make_tracer

    cells = list(cells)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if no_cache:
        cache = None

    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    keys = [fork_cache_key(c) for c in cells]
    done = 0

    def finish(i: int, outcome: CellOutcome) -> None:
        nonlocal done
        outcomes[i] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total, 0.0)

    pending: List[int] = []
    for i, cell in enumerate(cells):
        if cache is not None:
            hit = cache.load(keys[i])
            if hit is not None:
                finish(i, CellOutcome(cell, hit, from_cache=True, key=keys[i]))
                continue
        pending.append(i)

    groups: Dict[Tuple[str, float], List[int]] = {}
    for i in pending:
        base = (cache_key(cells[i].config, cells[i].workload), cells[i].fork_time)
        groups.setdefault(base, []).append(i)

    memo: Dict[WorkloadSpec, Workload] = {}
    for (_, fork_time), idxs in groups.items():
        first = cells[idxs[0]]
        # trace/profiler settings are observability-only (and excluded from
        # the key); strip them so the shared prefix needs no trace plumbing
        config = dataclasses.replace(first.config, trace_path="", profile=False)
        if first.workload not in memo:
            memo[first.workload] = first.workload.materialize()
        workload = memo[first.workload]

        snap = None
        prefix_s = 0.0
        if share_prefix:
            started = time.perf_counter()
            try:
                warm = Simulation(config, workload, tracer=make_tracer(config))
                warm.run(until=fork_time)
                snap = take_snapshot(warm)
                warm.close()
            except Exception:
                error = traceback.format_exc()
                for i in idxs:
                    finish(i, CellOutcome(cells[i], None, error=error, key=keys[i]))
                continue
            prefix_s = time.perf_counter() - started

        for n, i in enumerate(idxs):
            cell = cells[i]
            started = time.perf_counter()
            try:
                if snap is not None:
                    sim = snap.fork()
                else:
                    sim = Simulation(config, workload, tracer=make_tracer(config))
                    sim.run(until=fork_time)
                if cell.patch:
                    parse_patch(cell.patch).apply(sim)
                sim.run()
                result = sim.finalize()
                sim.close()
            except Exception:
                finish(i, CellOutcome(
                    cell, None, error=traceback.format_exc(), key=keys[i],
                    duration_s=time.perf_counter() - started,
                ))
                continue
            if cache is not None:
                cache.store(keys[i], result_to_dict(result))
            duration = time.perf_counter() - started
            if n == 0:
                duration += prefix_s  # charge the shared warm-up to the first fork
            finish(i, CellOutcome(cell, result, key=keys[i], duration_s=duration))
    return outcomes  # type: ignore[return-value]


# -- sharding -----------------------------------------------------------------


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``'K/M'`` (1-based) into ``(K, M)``."""
    try:
        k_text, m_text = spec.split("/")
        k, m = int(k_text), int(m_text)
    except ValueError:
        raise ValueError(f"bad shard spec {spec!r}; expected K/M, e.g. 2/4")
    if m < 1 or not 1 <= k <= m:
        raise ValueError(f"shard spec needs 1 <= K <= M, got {spec!r}")
    return k, m


def shard_cells(
    cells: Sequence[SweepCell], shard: Union[str, Tuple[int, int]]
) -> List[SweepCell]:
    """Round-robin shard ``K/M``: the M shards partition the cells exactly."""
    k, m = parse_shard(shard) if isinstance(shard, str) else shard
    return [c for i, c in enumerate(cells) if i % m == k - 1]


def dedupe_cells(cells: Iterable[SweepCell]) -> List[SweepCell]:
    """Drop cells whose cache key duplicates an earlier cell's."""
    seen = set()
    out = []
    for cell in cells:
        key = cache_key(cell.config, cell.workload)
        if key not in seen:
            seen.add(key)
            out.append(cell)
    return out


# -- named grids (the CLI's unit of work) -------------------------------------

#: grid names accepted by ``repro sweep --grid`` (besides ``all``)
GRID_NAMES = (
    "smoke", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations", "policies",
)


def _smoke_cells(n_jobs: int, seed: int) -> List[SweepCell]:
    """Two tiny invariant-checked cells for the CI replay smoke test."""
    from repro.core.config import DareConfig

    workload = WorkloadSpec("wl1", n_jobs, seed)
    return [
        SweepCell(
            ExperimentConfig(dare=dare, seed=seed, check_invariants=True),
            workload,
            tag=f"smoke/{tag}",
        )
        for tag, dare in (
            ("lru", DareConfig.greedy_lru()),
            ("et", DareConfig.elephant_trap()),
        )
    ]


def _policy_cells(n_jobs: int) -> List[SweepCell]:
    """The policy-benchmark grid: every registered policy (baselines,
    learned, rollout-greedy) on the pinned benchmark workload seeds."""
    from repro.policies.bench import BENCH_SEEDS, POLICY_COLUMNS, bench_config

    return [
        SweepCell(
            bench_config(policy),
            WorkloadSpec("wl1", n_jobs, wseed),
            tag=f"policies/{policy}/s{wseed}",
            x=float(wseed),
        )
        for wseed in BENCH_SEEDS
        for policy in POLICY_COLUMNS
    ]


def build_grid(
    name: str, n_jobs: int = 200, seed: int = DEFAULT_SEED
) -> List[SweepCell]:
    """Cells of one named grid (``GRID_NAMES``) or the deduplicated union
    of every evaluation grid (``'all'``)."""
    from repro.experiments import ablations as A
    from repro.experiments import figures as F

    if name == "smoke":
        return _smoke_cells(n_jobs, seed)
    if name == "fig7":
        return F.fig7_cells(n_jobs=n_jobs, seed=seed)
    if name == "fig8":
        return (F.fig8a_cells(n_jobs=n_jobs, seed=seed)
                + F.fig8b_cells(n_jobs=n_jobs, seed=seed))
    if name == "fig9":
        return (F.fig9a_cells(n_jobs=n_jobs, seed=seed)
                + F.fig9b_cells(n_jobs=n_jobs, seed=seed))
    if name == "fig10":
        return F.fig10_cells(n_jobs=n_jobs, seed=seed)
    if name == "fig11":
        return F.fig11_cells(n_jobs=n_jobs, seed=seed)
    if name == "ablations":
        return A.ablation_cells(n_jobs=n_jobs, seed=seed)
    if name == "policies":
        return _policy_cells(n_jobs)
    if name == "all":
        cells: List[SweepCell] = []
        for grid in ("fig7", "fig8", "fig9", "fig10", "fig11", "ablations"):
            cells.extend(build_grid(grid, n_jobs=n_jobs, seed=seed))
        return dedupe_cells(cells)
    raise ValueError(
        f"unknown grid {name!r} (expected one of {', '.join(GRID_NAMES)}, or 'all')"
    )
