"""Ablations beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* **disk writes** — the Section I claim that ElephantTrap matches greedy
  LRU's locality with roughly half the disk writes (thrashing control);
* **eviction policy** — LRU vs LFU vs ElephantTrap at equal budget (the
  paper says "choice between LRU and LFU should be made after profiling");
* **no budget** — what unlimited replica storage would buy (upper bound);
* **delay sweep** — how the Fair scheduler's delay interacts with DARE;
* **uniform replication baseline** — DARE vs simply raising every file's
  replication factor (the strawman Section II argues against).

Every ablation builds :class:`~repro.experiments.sweep.SweepCell` lists
and runs them through :func:`~repro.experiments.sweep.run_cells`, so all
of them accept ``jobs``/``cache`` for parallel, cached execution and
contribute their cells to ``repro sweep --grid ablations``.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig, Policy
from repro.experiments.runner import ExperimentConfig
from repro.experiments.sweep import (
    ResultCache,
    SweepCell,
    WorkloadSpec,
    dedupe_cells,
    results_of,
    run_cells,
)
from repro.workloads.swim import synthesize_wl1

DEFAULT_SEED = 20110926


class WritesRow(NamedTuple):
    """Locality vs disk-write cost for one policy."""

    policy: str
    locality: float
    replication_disk_writes: int
    evictions: int


def ablation_disk_writes_cells(
    n_jobs: int = 500, seed: int = DEFAULT_SEED, scheduler: str = "fifo"
) -> List[SweepCell]:
    """Cells of the disk-write ablation: greedy LRU vs ElephantTrap."""
    workload = WorkloadSpec("wl1", n_jobs, seed)
    return [
        SweepCell(
            ExperimentConfig(
                cluster_spec=CCT_SPEC, scheduler=scheduler, dare=dare, seed=seed
            ),
            workload,
            tag=f"ablation-writes/{label}",
        )
        for label, dare in [
            ("greedy-lru", DareConfig.greedy_lru(budget=0.2)),
            ("elephant-trap", DareConfig.elephant_trap(p=0.3, threshold=1, budget=0.2)),
        ]
    ]


def ablation_disk_writes(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    scheduler: str = "fifo",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[WritesRow]:
    """ElephantTrap vs greedy LRU: locality per disk write (Section I)."""
    cells = ablation_disk_writes_cells(n_jobs, seed, scheduler)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    return [
        WritesRow(
            c.tag.rsplit("/", 1)[1],
            r.job_locality,
            r.replication_disk_writes,
            r.blocks_evicted,
        )
        for c, r in zip(cells, results)
    ]


class EvictionRow(NamedTuple):
    """One eviction policy's outcome at equal budget."""

    policy: str
    locality: float
    blocks_per_job: float
    evictions: int


def ablation_eviction_policy_cells(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.2,
    scheduler: str = "fifo",
) -> List[SweepCell]:
    """Cells of the eviction-policy ablation (LRU vs LFU vs ElephantTrap)."""
    workload = WorkloadSpec("wl2", n_jobs, seed)
    configs = [
        ("greedy-lru", DareConfig(policy=Policy.GREEDY_LRU, budget=budget)),
        ("greedy-lfu", DareConfig(policy=Policy.GREEDY_LFU, budget=budget)),
        ("elephant-trap", DareConfig.elephant_trap(p=0.3, threshold=1, budget=budget)),
    ]
    return [
        SweepCell(
            ExperimentConfig(
                cluster_spec=CCT_SPEC, scheduler=scheduler, dare=dare, seed=seed
            ),
            workload,
            tag=f"ablation-eviction/{label}",
        )
        for label, dare in configs
    ]


def ablation_eviction_policy(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.2,
    scheduler: str = "fifo",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[EvictionRow]:
    """LRU vs LFU vs ElephantTrap under the same budget (wl2)."""
    cells = ablation_eviction_policy_cells(n_jobs, seed, budget, scheduler)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    return [
        EvictionRow(
            c.tag.rsplit("/", 1)[1],
            r.job_locality,
            r.blocks_created_per_job,
            r.blocks_evicted,
        )
        for c, r in zip(cells, results)
    ]


class BudgetBoundRow(NamedTuple):
    """Budgeted DARE vs an effectively unlimited budget."""

    budget: str
    locality: float
    extra_storage_fraction: float


def ablation_unlimited_budget_cells(
    n_jobs: int = 500, seed: int = DEFAULT_SEED
) -> List[SweepCell]:
    """Cells of the unlimited-budget ablation."""
    workload = WorkloadSpec("wl1", n_jobs, seed)
    return [
        SweepCell(
            ExperimentConfig(
                cluster_spec=CCT_SPEC,
                scheduler="fifo",
                dare=DareConfig.elephant_trap(p=0.3, threshold=1, budget=budget),
                seed=seed,
            ),
            workload,
            tag=f"ablation-budget/{label}",
        )
        for label, budget in [("0.2", 0.2), ("unlimited", 100.0)]
    ]


def ablation_unlimited_budget(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[BudgetBoundRow]:
    """How much locality the 20% budget leaves on the table (wl1, FIFO)."""
    cells = ablation_unlimited_budget_cells(n_jobs, seed)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    # fraction of the 3x-replicated data set the dynamic replicas add
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    dataset = sum(f.n_blocks for f in workload.catalog.files)
    rows = []
    for cell, r in zip(cells, results):
        live_dynamic = r.blocks_created - r.blocks_evicted
        rows.append(
            BudgetBoundRow(
                cell.tag.rsplit("/", 1)[1], r.job_locality, live_dynamic / (3 * dataset)
            )
        )
    return rows


class DelayRow(NamedTuple):
    """Fair-scheduler delay sweep point."""

    delay_s: float
    vanilla_locality: float
    dare_locality: float
    vanilla_gmtt: float
    dare_gmtt: float


def ablation_delay_sweep_cells(
    delays: Sequence[float] = (0.0, 0.5, 1.5, 3.0, 6.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the delay sweep: (vanilla, DARE) per delay value.

    The delay rides on ``ExperimentConfig.fair_delay_s``, so these cells
    are hashable, cacheable, and runnable in worker processes like any
    other (no scheduler-factory monkeypatching).
    """
    workload = WorkloadSpec("wl1", n_jobs, seed)
    cells = []
    for d in delays:
        for label, dare in (("vanilla", DareConfig.off()),
                            ("et", DareConfig.elephant_trap())):
            cells.append(
                SweepCell(
                    ExperimentConfig(
                        cluster_spec=CCT_SPEC,
                        scheduler="fair",
                        dare=dare,
                        seed=seed,
                        fair_delay_s=d,
                    ),
                    workload,
                    tag=f"ablation-delay/d={d:g}/{label}",
                    x=d,
                )
            )
    return cells


def ablation_delay_sweep(
    delays: Sequence[float] = (0.0, 0.5, 1.5, 3.0, 6.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[DelayRow]:
    """Delay scheduling x DARE interaction (wl1)."""
    cells = ablation_delay_sweep_cells(delays, n_jobs, seed)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for i in range(0, len(cells), 2):
        van, dare = results[i], results[i + 1]
        rows.append(
            DelayRow(cells[i].x, van.job_locality, dare.job_locality,
                     van.gmtt_s, dare.gmtt_s)
        )
    return rows


class OversubRow(NamedTuple):
    """Oversubscribed-fabric ablation point."""

    cross_rack_factor: float
    vanilla_locality: float
    dare_locality: float
    vanilla_gmtt: float
    dare_gmtt: float

    @property
    def gmtt_reduction(self) -> float:
        """Fractional GMTT improvement DARE buys at this oversubscription."""
        return 1.0 - self.dare_gmtt / self.vanilla_gmtt


def ablation_oversubscription_cells(
    factors: Sequence[float] = (1.0, 2.5, 5.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    racks: int = 4,
) -> List[SweepCell]:
    """Cells of the oversubscription ablation: (vanilla, DARE) per factor."""
    workload = WorkloadSpec("wl1", n_jobs, seed)
    cells = []
    for factor in factors:
        spec = CCT_SPEC._replace(
            dedicated_racks=racks,
            network=CCT_SPEC.network._replace(cross_rack_factor=factor),
        )
        for label, dare in (("vanilla", DareConfig.off()),
                            ("et", DareConfig.elephant_trap())):
            cells.append(
                SweepCell(
                    ExperimentConfig(
                        cluster_spec=spec, scheduler="fifo", dare=dare, seed=seed
                    ),
                    workload,
                    tag=f"ablation-oversub/x{factor:g}/{label}",
                    x=factor,
                )
            )
    return cells


def ablation_oversubscription(
    factors: Sequence[float] = (1.0, 2.5, 5.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    racks: int = 4,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[OversubRow]:
    """DARE's value grows with fabric oversubscription (Section V-B).

    Runs wl1 on a multi-rack dedicated cluster whose cross-rack bandwidth
    is divided by increasing factors ("network fabrics are frequently
    oversubscribed, especially across racks").  The more oversubscribed the
    fabric, the more each avoided remote read is worth.
    """
    cells = ablation_oversubscription_cells(factors, n_jobs, seed, racks)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    rows = []
    for i in range(0, len(cells), 2):
        van, dare = results[i], results[i + 1]
        rows.append(
            OversubRow(cells[i].x, van.job_locality, dare.job_locality,
                       van.gmtt_s, dare.gmtt_s)
        )
    return rows


class UniformRow(NamedTuple):
    """Uniform k-replication baseline vs DARE."""

    label: str
    locality: float
    storage_blocks: int


def ablation_uniform_replication_cells(
    factors: Sequence[int] = (3, 4, 6, 8),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[SweepCell]:
    """Cells of the uniform-replication ablation: rf sweep plus DARE."""
    workload = WorkloadSpec("wl1", n_jobs, seed)
    cells = [
        SweepCell(
            ExperimentConfig(
                cluster_spec=CCT_SPEC, scheduler="fifo", replication=k, seed=seed
            ),
            workload,
            tag=f"ablation-uniform/rf={k}",
            x=float(k),
        )
        for k in factors
    ]
    cells.append(
        SweepCell(
            ExperimentConfig(
                cluster_spec=CCT_SPEC,
                scheduler="fifo",
                dare=DareConfig.elephant_trap(),
                seed=seed,
            ),
            workload,
            tag="ablation-uniform/dare",
        )
    )
    return cells


def ablation_uniform_replication(
    factors: Sequence[int] = (3, 4, 6, 8),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[UniformRow]:
    """DARE vs raising every file's replication factor (wl1, FIFO).

    The storage column shows why uniform replication is the wrong tool:
    it pays for replicas of data nobody reads.
    """
    cells = ablation_uniform_replication_cells(factors, n_jobs, seed)
    results = results_of(run_cells(cells, jobs=jobs, cache=cache))
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    dataset_blocks = sum(f.n_blocks for f in workload.catalog.files)
    rows = []
    for k, r in zip(factors, results):
        rows.append(UniformRow(f"uniform rf={k}", r.job_locality, k * dataset_blocks))
    dare_result = results[-1]
    live_dynamic = dare_result.blocks_created - dare_result.blocks_evicted
    rows.append(
        UniformRow(
            "DARE (rf=3 + budget 0.2)",
            dare_result.job_locality,
            3 * dataset_blocks + live_dynamic,
        )
    )
    return rows


def ablation_cells(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> List[SweepCell]:
    """Every ablation's cells, deduplicated, for ``repro sweep --grid``."""
    return dedupe_cells(
        ablation_disk_writes_cells(n_jobs, seed)
        + ablation_eviction_policy_cells(n_jobs, seed)
        + ablation_unlimited_budget_cells(n_jobs, seed)
        + ablation_delay_sweep_cells(n_jobs=n_jobs, seed=seed)
        + ablation_oversubscription_cells(n_jobs=n_jobs, seed=seed)
        + ablation_uniform_replication_cells(n_jobs=n_jobs, seed=seed)
    )
