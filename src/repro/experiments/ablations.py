"""Ablations beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* **disk writes** — the Section I claim that ElephantTrap matches greedy
  LRU's locality with roughly half the disk writes (thrashing control);
* **eviction policy** — LRU vs LFU vs ElephantTrap at equal budget (the
  paper says "choice between LRU and LFU should be made after profiling");
* **no budget** — what unlimited replica storage would buy (upper bound);
* **delay sweep** — how the Fair scheduler's delay interacts with DARE;
* **uniform replication baseline** — DARE vs simply raising every file's
  replication factor (the strawman Section II argues against).
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

import numpy as np

from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig, Policy
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.scheduling.fair import FairScheduler
from repro.workloads.swim import synthesize_wl1, synthesize_wl2

DEFAULT_SEED = 20110926


class WritesRow(NamedTuple):
    """Locality vs disk-write cost for one policy."""

    policy: str
    locality: float
    replication_disk_writes: int
    evictions: int


def ablation_disk_writes(
    n_jobs: int = 500, seed: int = DEFAULT_SEED, scheduler: str = "fifo"
) -> List[WritesRow]:
    """ElephantTrap vs greedy LRU: locality per disk write (Section I)."""
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    rows = []
    for label, dare in [
        ("greedy-lru", DareConfig.greedy_lru(budget=0.2)),
        ("elephant-trap", DareConfig.elephant_trap(p=0.3, threshold=1, budget=0.2)),
    ]:
        r = run_experiment(
            ExperimentConfig(cluster_spec=CCT_SPEC, scheduler=scheduler, dare=dare, seed=seed),
            workload,
        )
        rows.append(
            WritesRow(label, r.job_locality, r.replication_disk_writes, r.blocks_evicted)
        )
    return rows


class EvictionRow(NamedTuple):
    """One eviction policy's outcome at equal budget."""

    policy: str
    locality: float
    blocks_per_job: float
    evictions: int


def ablation_eviction_policy(
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    budget: float = 0.2,
    scheduler: str = "fifo",
) -> List[EvictionRow]:
    """LRU vs LFU vs ElephantTrap under the same budget (wl2)."""
    workload = synthesize_wl2(np.random.default_rng(seed), n_jobs=n_jobs)
    configs = [
        ("greedy-lru", DareConfig(policy=Policy.GREEDY_LRU, budget=budget)),
        ("greedy-lfu", DareConfig(policy=Policy.GREEDY_LFU, budget=budget)),
        ("elephant-trap", DareConfig.elephant_trap(p=0.3, threshold=1, budget=budget)),
    ]
    rows = []
    for label, dare in configs:
        r = run_experiment(
            ExperimentConfig(cluster_spec=CCT_SPEC, scheduler=scheduler, dare=dare, seed=seed),
            workload,
        )
        rows.append(
            EvictionRow(label, r.job_locality, r.blocks_created_per_job, r.blocks_evicted)
        )
    return rows


class BudgetBoundRow(NamedTuple):
    """Budgeted DARE vs an effectively unlimited budget."""

    budget: str
    locality: float
    extra_storage_fraction: float


def ablation_unlimited_budget(
    n_jobs: int = 500, seed: int = DEFAULT_SEED
) -> List[BudgetBoundRow]:
    """How much locality the 20% budget leaves on the table (wl1, FIFO)."""
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    rows = []
    for label, budget in [("0.2", 0.2), ("unlimited", 100.0)]:
        dare = DareConfig.elephant_trap(p=0.3, threshold=1, budget=budget)
        r = run_experiment(
            ExperimentConfig(cluster_spec=CCT_SPEC, scheduler="fifo", dare=dare, seed=seed),
            workload,
        )
        # fraction of the 3x-replicated data set the dynamic replicas add
        dataset = sum(
            f.n_blocks for f in workload.catalog.files
        )
        live_dynamic = r.blocks_created - r.blocks_evicted
        rows.append(BudgetBoundRow(label, r.job_locality, live_dynamic / (3 * dataset)))
    return rows


class DelayRow(NamedTuple):
    """Fair-scheduler delay sweep point."""

    delay_s: float
    vanilla_locality: float
    dare_locality: float
    vanilla_gmtt: float
    dare_gmtt: float


def ablation_delay_sweep(
    delays: Sequence[float] = (0.0, 0.5, 1.5, 3.0, 6.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[DelayRow]:
    """Delay scheduling x DARE interaction (wl1).

    Uses a custom scheduler factory per delay, exercising the same
    experiment path as the headline figures.
    """
    from repro.experiments import runner as runner_mod

    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    rows = []
    original = runner_mod.make_scheduler
    try:
        for d in delays:
            runner_mod.make_scheduler = (
                lambda name, _d=d: FairScheduler(node_delay_s=_d, rack_delay_s=_d)
                if name == "fair"
                else original(name)
            )
            van = run_experiment(
                ExperimentConfig(cluster_spec=CCT_SPEC, scheduler="fair", seed=seed),
                workload,
            )
            dare = run_experiment(
                ExperimentConfig(
                    cluster_spec=CCT_SPEC,
                    scheduler="fair",
                    dare=DareConfig.elephant_trap(),
                    seed=seed,
                ),
                workload,
            )
            rows.append(
                DelayRow(d, van.job_locality, dare.job_locality, van.gmtt_s, dare.gmtt_s)
            )
    finally:
        runner_mod.make_scheduler = original
    return rows


class OversubRow(NamedTuple):
    """Oversubscribed-fabric ablation point."""

    cross_rack_factor: float
    vanilla_locality: float
    dare_locality: float
    vanilla_gmtt: float
    dare_gmtt: float

    @property
    def gmtt_reduction(self) -> float:
        """Fractional GMTT improvement DARE buys at this oversubscription."""
        return 1.0 - self.dare_gmtt / self.vanilla_gmtt


def ablation_oversubscription(
    factors: Sequence[float] = (1.0, 2.5, 5.0),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
    racks: int = 4,
) -> List[OversubRow]:
    """DARE's value grows with fabric oversubscription (Section V-B).

    Runs wl1 on a multi-rack dedicated cluster whose cross-rack bandwidth
    is divided by increasing factors ("network fabrics are frequently
    oversubscribed, especially across racks").  The more oversubscribed the
    fabric, the more each avoided remote read is worth.
    """
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    rows = []
    for factor in factors:
        spec = CCT_SPEC._replace(
            dedicated_racks=racks,
            network=CCT_SPEC.network._replace(cross_rack_factor=factor),
        )
        van = run_experiment(
            ExperimentConfig(cluster_spec=spec, scheduler="fifo", seed=seed), workload
        )
        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=spec,
                scheduler="fifo",
                dare=DareConfig.elephant_trap(),
                seed=seed,
            ),
            workload,
        )
        rows.append(
            OversubRow(factor, van.job_locality, dare.job_locality, van.gmtt_s, dare.gmtt_s)
        )
    return rows


class UniformRow(NamedTuple):
    """Uniform k-replication baseline vs DARE."""

    label: str
    locality: float
    storage_blocks: int


def ablation_uniform_replication(
    factors: Sequence[int] = (3, 4, 6, 8),
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[UniformRow]:
    """DARE vs raising every file's replication factor (wl1, FIFO).

    The storage column shows why uniform replication is the wrong tool:
    it pays for replicas of data nobody reads.
    """
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    dataset_blocks = sum(f.n_blocks for f in workload.catalog.files)
    rows = []
    for k in factors:
        r = run_experiment(
            ExperimentConfig(
                cluster_spec=CCT_SPEC, scheduler="fifo", replication=k, seed=seed
            ),
            workload,
        )
        rows.append(UniformRow(f"uniform rf={k}", r.job_locality, k * dataset_blocks))
    r = run_experiment(
        ExperimentConfig(
            cluster_spec=CCT_SPEC,
            scheduler="fifo",
            dare=DareConfig.elephant_trap(),
            seed=seed,
        ),
        workload,
    )
    live_dynamic = r.blocks_created - r.blocks_evicted
    rows.append(
        UniformRow("DARE (rf=3 + budget 0.2)", r.job_locality, 3 * dataset_blocks + live_dynamic)
    )
    return rows
