"""Run one trace through the full simulated stack and collect metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


from repro.baselines.cdrm import CdrmConfig
from repro.baselines.scarlett import ScarlettConfig
from repro.cluster.cluster import Cluster, ClusterSpec, CCT_SPEC
from repro.failures.injector import FailureInjector, FailurePlan
from repro.failures.repair import ReReplicationService
from repro.metrics.traffic import TrafficMeter
from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.hdfs.namenode import NameNode
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.runtime import TaskTimeModel
from repro.metrics.collector import MetricsCollector
from repro.metrics.locality import LocalityStats, cluster_locality, mean_job_locality
from repro.metrics.placement import coefficient_of_variation, popularity_indices
from repro.metrics.slowdown import mean_slowdown
from repro.metrics.turnaround import geometric_mean_turnaround
from repro.observability.invariants import InvariantChecker
from repro.observability.profiling import CallbackProfiler
from repro.observability.trace import (
    NULL_TRACER,
    RUN_CONFIG,
    RUN_SUMMARY,
    JsonlSink,
    Tracer,
)
from repro.policies.registry import create_service
from repro.policies.rollout import RolloutConfig
from repro.scheduling.base import Scheduler
from repro.scheduling.fair import FairScheduler, SkipCountFairScheduler
from repro.scheduling.fifo import FifoScheduler
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from repro.workloads.swim import Workload


def make_scheduler(name: str, fair_delay_s: Optional[float] = None) -> Scheduler:
    """Scheduler factory: 'fifo', 'fair', or 'fair-skip'.

    ``fair_delay_s`` overrides both of the Fair scheduler's delays (the
    delay-sweep ablation); it is part of :class:`ExperimentConfig` so a
    delay-sweep cell is fully described by its config and can be hashed,
    cached, and run in a worker process.
    """
    if fair_delay_s is not None and name != "fair":
        raise ValueError(f"fair_delay_s only applies to 'fair', not {name!r}")
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        if fair_delay_s is not None:
            return FairScheduler(node_delay_s=fair_delay_s, rack_delay_s=fair_delay_s)
        return FairScheduler()
    if name == "fair-skip":
        return SkipCountFairScheduler()
    raise ValueError(
        f"unknown scheduler {name!r} (expected 'fifo', 'fair', or 'fair-skip')"
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: cluster x scheduler x DARE setting.

    Optional extensions: ``scarlett`` runs the epoch-based proactive
    baseline instead of (or alongside) DARE; ``failures`` is a tuple of
    ``(time_s, node_id)`` node-crash events, repaired by an HDFS-style
    re-replication service.
    """

    cluster_spec: ClusterSpec = CCT_SPEC
    scheduler: str = "fifo"
    dare: DareConfig = DareConfig.off()
    seed: int = 20110926
    replication: int = 3  # HDFS default
    scarlett: Optional[ScarlettConfig] = None
    cdrm: Optional[CdrmConfig] = None
    failures: Tuple[Tuple[float, int], ...] = ()
    failure_detection_s: float = 10.0
    #: enable Hadoop-style speculative execution of straggler maps
    speculative: bool = False
    #: override both Fair-scheduler delays (None = scheduler defaults);
    #: config-level so delay-sweep cells are hashable and cacheable
    fair_delay_s: Optional[float] = None
    #: write a JSONL trace of the run to this path (empty = no trace file)
    trace_path: str = ""
    #: also record the per-callback ``engine.event`` firehose (huge traces,
    #: but gives ``replay diff`` event-level alignment)
    trace_engine_events: bool = False
    #: arm the runtime invariant checker on the trace bus
    check_invariants: bool = False
    #: how many trace records between full cross-component sweeps
    invariant_sweep_every: int = 2000
    #: attach a sampling CallbackProfiler to the engine (repro perf /
    #: run --profile); does not perturb the simulation or its trace
    profile: bool = False
    #: time every Nth engine callback when profiling
    profile_sample_every: int = 7
    #: drive the run through the checkpoint-fork rollout engine
    #: (repro.policies.rollout); None = plain single-trajectory run
    rollout: Optional[RolloutConfig] = None

    def label(self) -> str:
        """Readable cell label for reports."""
        suffix = "+rollout" if self.rollout is not None else ""
        return (
            f"{self.cluster_spec.name}/{self.scheduler}/"
            f"{self.dare.policy.value}{suffix}"
        )


@dataclass
class ExperimentResult:
    """Every metric the paper's evaluation reports, for one run."""

    config: ExperimentConfig
    workload: str
    n_jobs: int
    #: cluster-wide task-placement breakdown
    locality: LocalityStats
    #: unweighted mean of per-job locality (Fig. 7a / 10a bars)
    job_locality: float
    #: geometric mean turnaround time, seconds (Fig. 7b / 10b)
    gmtt_s: float
    #: mean slowdown vs dedicated-cluster ideal (Fig. 7c / 10c)
    slowdown: float
    #: mean map-task completion time, seconds (Section V-C)
    mean_map_s: float
    #: dynamic replicas created, total and per job (Figs. 8-9 bottom)
    blocks_created: int
    blocks_created_per_job: float
    #: dynamic replicas evicted (thrashing indicator)
    blocks_evicted: int
    #: disk writes attributable to replication (the LRU-vs-ET claim)
    replication_disk_writes: int
    #: cv of node popularity indices before/after the run (Fig. 11)
    cv_before: float
    cv_after: float
    #: makespan of the whole trace, seconds
    makespan_s: float
    #: network bytes moved, by category (remote reads, shuffle, ...)
    traffic_bytes: Dict[str, int] = field(default_factory=dict)
    #: failure-experiment outcomes (zero when no failures injected)
    blocks_lost_replicas: int = 0
    data_loss_blocks: int = 0
    repairs_completed: int = 0
    tasks_requeued: int = 0
    #: Scarlett baseline activity (zero when not enabled)
    scarlett_replicas_created: int = 0
    #: CDRM baseline activity (zero when not enabled)
    cdrm_replicas_created: int = 0
    #: speculative-execution activity (zero when not enabled)
    speculative_launched: int = 0
    speculative_wasted: int = 0
    speculative_won: int = 0
    #: observability activity (zero when tracing/checking disabled)
    trace_records_checked: int = 0
    invariant_sweeps: int = 0
    #: engine callbacks fired and wall-clock spent inside engine.run()
    events_processed: int = 0
    engine_wall_s: float = 0.0
    #: the sampling profiler, populated when config.profile is set
    profiler: Optional["CallbackProfiler"] = field(repr=False, default=None)
    #: raw per-task / per-job records for deeper analysis
    collector: MetricsCollector = field(repr=False, default=None)

    def summary_row(self) -> str:
        """One printable summary line."""
        return (
            f"{self.config.label():<34s} {self.workload:<4s} "
            f"loc={self.job_locality:5.3f} gmtt={self.gmtt_s:8.1f}s "
            f"slow={self.slowdown:5.2f} blk/job={self.blocks_created_per_job:5.2f}"
        )


def run_experiment(
    config: ExperimentConfig,
    workload: Workload,
    collector: Optional[MetricsCollector] = None,
    tracer: Optional[Tracer] = None,
) -> ExperimentResult:
    """Replay ``workload`` under ``config`` and measure everything.

    Deterministic: the same (config, workload) pair always produces the
    same result.  The cluster, HDFS placement, and DARE coin streams are
    all derived from ``config.seed``.

    Observability: pass a :class:`Tracer` (or set ``config.trace_path`` /
    ``config.check_invariants``) to record structured events and validate
    cross-component invariants while the simulation runs.  An
    :class:`~repro.observability.invariants.InvariantViolation` aborts the
    run at the offending event.

    Traces are bracketed by a ``run.config`` header and (on successful
    completion) a ``run.summary`` footer; the footer's absence marks a
    crashed run.  Everything from sink attach onward runs under a
    ``finally: tracer.close()``, so a crashed run still leaves a flushed,
    parseable trace behind for ``python -m repro replay``.

    When ``config.rollout`` is set the cell runs through the
    checkpoint-fork rollout engine instead of a single trajectory.
    """
    if config.rollout is not None:
        from repro.policies.rollout import run_rollout_experiment

        return run_rollout_experiment(config, workload, collector, tracer)
    tracer = make_tracer(config, tracer)
    try:
        sim = Simulation(config, workload, collector, tracer)
        sim.run()
        return sim.finalize()
    finally:
        tracer.close()


def make_tracer(config: ExperimentConfig, tracer: Optional[Tracer] = None) -> Tracer:
    """Resolve the tracer for a run and attach the JSONL sink, if any."""
    if tracer is None:
        tracer = (
            Tracer(engine_events=config.trace_engine_events)
            if (
                config.trace_path
                or config.check_invariants
                or config.trace_engine_events
            )
            else NULL_TRACER
        )
    elif config.trace_engine_events and tracer.enabled:
        tracer.engine_events = True
    if config.trace_path:
        tracer.add_sink(JsonlSink(config.trace_path))
    return tracer


def _trace_run_config(tracer: Tracer, config: ExperimentConfig, workload: Workload) -> None:
    # the flat fields are the human-readable header; the nested ``config``
    # payload is the lossless form `replay whatif` rebuilds a live run from.
    # Fields that cannot affect simulation behaviour (trace destination,
    # profiler) are stripped so runs differing only in observability still
    # emit byte-identical traces.
    from repro.experiments.serialize import config_to_dict

    payload = config_to_dict(config)
    for key in ("trace_path", "profile", "profile_sample_every"):
        payload.pop(key, None)
    tracer.emit(
        RUN_CONFIG,
        0.0,
        config=payload,
        workload=workload.name,
        jobs=workload.n_jobs,
        cluster=config.cluster_spec.name,
        scheduler=config.scheduler,
        policy=config.dare.policy.value,
        seed=config.seed,
        budget=config.dare.budget,
        replication=config.replication,
        engine_events=tracer.engine_events,
        scarlett=config.scarlett is not None,
        cdrm=config.cdrm is not None,
        failures=len(config.failures),
        speculative=config.speculative,
    )


def _trace_run_summary(
    tracer: Tracer, result: "ExperimentResult", namenode: NameNode, now: float
) -> None:
    nodes = {}
    for node_id, dn in sorted(namenode.datanodes.items()):
        live = sorted(set(dn.dynamic_blocks) - dn.pending_deletion)
        if live or dn.dynamic_bytes_used:
            nodes[str(node_id)] = {"dynamic": live, "used": dn.dynamic_bytes_used}
    tracer.emit(
        RUN_SUMMARY,
        now,
        n_jobs=result.n_jobs,
        locality_node=result.locality.node_local,
        locality_rack=result.locality.rack_local,
        locality_remote=result.locality.remote,
        job_locality=result.job_locality,
        job_locality_counts={
            str(rec.job_id): list(rec.locality_counts)
            for rec in result.collector.job_records
        },
        blocks_created=result.blocks_created,
        blocks_evicted=result.blocks_evicted,
        replication_disk_writes=result.replication_disk_writes,
        tasks_requeued=result.tasks_requeued,
        speculative_launched=result.speculative_launched,
        scarlett_replicas_created=result.scarlett_replicas_created,
        makespan_s=result.makespan_s,
        nodes=nodes,
    )


class _JobsFinished:
    """Picklable ``stop_when`` predicate shared by the baseline services."""

    __slots__ = ("jobtracker",)

    def __init__(self, jobtracker: JobTracker) -> None:
        self.jobtracker = jobtracker

    def __call__(self) -> bool:
        return self.jobtracker.finished


class Simulation:
    """The fully wired simulator stack for one experiment cell.

    Construction performs the whole build phase — cluster, HDFS, policy
    services, JobTracker, failure plan — and emits the ``run.config``
    trace header.  :meth:`run` then drives the engine, optionally only up
    to a time horizon, so a caller can pause mid-run, hand the object to
    :func:`repro.checkpoint.snapshot`, and resume later (or in a forked
    copy).  :meth:`finalize` settles the control plane and computes the
    :class:`ExperimentResult`.

    :func:`run_experiment` is the one-shot wrapper; this class is the
    object graph the checkpoint layer pickles, so everything reachable
    from it must be picklable — event actions are typed intents, never
    closures — or explicitly excluded (the shared tracer and profiler).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        workload: Workload,
        collector: Optional[MetricsCollector] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.workload = workload
        self.tracer = tracer
        if config.cluster_spec.mesoscale and config.check_invariants:
            # the strict sweep audits every TaskTracker's slot accounting;
            # mesoscale pools idle trackers away, so the audit would
            # silently skip exactly the nodes it is meant to cover
            raise ValueError(
                "check_invariants requires every node event-accurate; "
                "disable mesoscale (or drop the invariant checks)"
            )
        if tracer.enabled:
            _trace_run_config(tracer, config, workload)

        self.streams = streams = RandomStreams(config.seed)
        self.cluster = cluster = Cluster(config.cluster_spec, streams)
        self.engine = engine = Engine(tracer=tracer)
        self.profiler = None
        if config.profile:
            self.profiler = CallbackProfiler(sample_every=config.profile_sample_every)
            engine.profiler = self.profiler
        self.namenode = namenode = NameNode(cluster, tracer=tracer)

        # load the data set (static replicas via the default placement policy)
        for fspec in workload.catalog.files:
            namenode.create_file(
                fspec.name, fspec.size_bytes(), replication=config.replication
            )

        self.access_counts = dict(workload.access_counts())
        self.cv_before = coefficient_of_variation(
            popularity_indices(namenode, self.access_counts)
        )

        self.dare = dare = DareReplicationService(
            config.dare, namenode, streams, tracer=tracer
        )
        self.scheduler = scheduler = make_scheduler(config.scheduler, config.fair_delay_s)
        self.time_model = time_model = TaskTimeModel(
            cluster, namenode, streams.python("runtime.sources")
        )
        self.collector = collector = collector or MetricsCollector()
        self.traffic = traffic = TrafficMeter()
        speculation = None
        if config.speculative:
            from repro.mapreduce.speculation import SpeculationPolicy

            speculation = SpeculationPolicy()
        self.jobtracker = jobtracker = JobTracker(
            cluster, namenode, engine, scheduler, time_model, dare, collector, traffic,
            speculation=speculation, tracer=tracer,
        )
        jobtracker.start_tasktrackers()
        jobtracker.submit_trace(workload.specs)

        self.scarlett = None
        if config.scarlett is not None:
            self.scarlett = create_service(
                "scarlett",
                config.scarlett,
                namenode=namenode,
                engine=engine,
                traffic=traffic,
                rng=streams.python("scarlett"),
                stop_when=_JobsFinished(jobtracker),
                tracer=tracer,
            )
            jobtracker.submit_listeners.append(self.scarlett.observe_submission)
            self.scarlett.arm()

        self.checker = None
        if config.check_invariants:
            self.checker = InvariantChecker(
                namenode,
                dare=dare,
                jobtracker=jobtracker,
                scarlett=self.scarlett,
                full_sweep_every=config.invariant_sweep_every,
            ).attach(tracer)

        self.cdrm = None
        if config.cdrm is not None:
            self.cdrm = create_service(
                "cdrm",
                config.cdrm,
                namenode=namenode,
                engine=engine,
                traffic=traffic,
                rng=streams.python("cdrm"),
                stop_when=_JobsFinished(jobtracker),
                tracer=tracer,
            )
            self.cdrm.arm()

        self.injector = None
        self.repair = None
        if config.failures:
            self.repair = ReReplicationService(
                namenode, engine, traffic, streams.python("repair")
            )
            self.injector = FailureInjector(
                FailurePlan(tuple(config.failures)),
                engine,
                namenode,
                jobtracker,
                self.repair,
                detection_delay_s=config.failure_detection_s,
                tracer=tracer,
            )
            self.injector.arm()

        #: cumulative wall-clock spent inside engine.run() (across pauses)
        self.engine_wall_s = 0.0

    # -- driving -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    @property
    def finished(self) -> bool:
        """True once every submitted job has completed."""
        return self.jobtracker.finished

    def run(self, until: Optional[float] = None) -> None:
        """Drive the engine until drained, or only up to time ``until``."""
        wall_start = time.perf_counter()
        try:
            self.engine.run(until=until)
        finally:
            self.engine_wall_s += time.perf_counter() - wall_start

    def close(self) -> None:
        """Close the tracer (flushes any attached JSONL sink)."""
        self.tracer.close()

    # -- results -------------------------------------------------------------

    def finalize(self) -> ExperimentResult:
        """Settle the control plane and compute the run's metrics."""
        if not self.jobtracker.finished:
            raise RuntimeError(
                f"simulation drained with {self.jobtracker.completed_jobs}/"
                f"{self.jobtracker.expected_jobs} jobs complete"
            )

        engine = self.engine
        namenode = self.namenode
        collector = self.collector
        # settle the control plane so the final placement view is complete
        namenode.flush_all_heartbeats(engine.now)
        namenode.check_integrity()
        if self.checker is not None:
            self.checker.check_now()

        cv_after = coefficient_of_variation(
            popularity_indices(namenode, self.access_counts)
        )
        records = collector.job_records
        dare = self.dare
        injector = self.injector
        result = ExperimentResult(
            config=self.config,
            workload=self.workload.name,
            n_jobs=len(records),
            locality=cluster_locality(records),
            job_locality=mean_job_locality(records),
            gmtt_s=geometric_mean_turnaround(records),
            slowdown=mean_slowdown(
                records, self.workload.specs_by_id, self.cluster, self.time_model
            ),
            mean_map_s=collector.mean_map_duration(),
            blocks_created=dare.total_replications,
            blocks_created_per_job=dare.total_replications / max(1, len(records)),
            blocks_evicted=dare.total_evictions(),
            replication_disk_writes=dare.total_disk_writes(),
            cv_before=self.cv_before,
            cv_after=cv_after,
            makespan_s=engine.now,
            traffic_bytes=self.jobtracker.traffic.by_category,
            blocks_lost_replicas=injector.blocks_that_lost_replicas if injector else 0,
            data_loss_blocks=injector.data_loss_count if injector else 0,
            repairs_completed=self.repair.repairs_completed if self.repair else 0,
            tasks_requeued=self.jobtracker.tasks_requeued,
            scarlett_replicas_created=(
                self.scarlett.replicas_created if self.scarlett else 0
            ),
            cdrm_replicas_created=self.cdrm.replicas_created if self.cdrm else 0,
            speculative_launched=self.jobtracker.speculative_launched,
            speculative_wasted=self.jobtracker.speculative_wasted,
            speculative_won=self.jobtracker.speculative_won,
            trace_records_checked=self.checker.records_seen if self.checker else 0,
            invariant_sweeps=self.checker.sweeps_run if self.checker else 0,
            events_processed=engine.events_processed,
            engine_wall_s=self.engine_wall_s,
            profiler=self.profiler,
            collector=collector,
        )
        if self.tracer.enabled:
            _trace_run_summary(self.tracer, result, namenode, engine.now)
        return result
