"""Machine-readable results and a markdown report for the full evaluation.

:func:`collect_results` runs every table/figure driver once and returns a
plain-dict results tree; :func:`write_report` serializes it to
``results.json`` plus a human-readable ``REPORT.md``.  This is the artifact
a downstream reviewer diffs across code changes — deterministic, scale-
annotated, and complete.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.experiments import figures as drivers
from repro.experiments.ablations import (
    ablation_disk_writes,
    ablation_oversubscription,
)
from repro.experiments.sweep import ResultCache
from repro.experiments.tables import (
    bandwidth_ratios,
    fig1_hop_distribution,
    table1_rtt,
    table2_bandwidth,
)


def _stats(s) -> Dict[str, float]:
    return {"min": s.min, "mean": s.mean, "max": s.max, "std": s.std}


def collect_results(
    n_jobs: int = 500,
    seed: int = drivers.DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict:
    """Run the whole evaluation once; returns a JSON-serializable tree.

    ``jobs`` worker processes and an optional sweep result ``cache`` are
    threaded through every figure/ablation driver.
    """
    out: Dict = {"scale": {"n_jobs": n_jobs, "seed": seed}}

    out["table1_rtt_ms"] = {r.cluster: _stats(r.stats) for r in table1_rtt(seed)}
    out["table2_bandwidth_mbps"] = {
        r.label: _stats(r.stats) for r in table2_bandwidth(seed)
    }
    out["bandwidth_ratios"] = bandwidth_ratios(seed)
    out["fig1_hop_histogram"] = [float(x) for x in fig1_hop_distribution(seed)]

    pop = drivers.fig2_popularity(seed)
    out["fig2_popularity"] = {
        "rank1": float(pop["raw"][0]),
        "rank10": float(pop["raw"][min(9, len(pop["raw"]) - 1)]),
        "rank100": float(pop["raw"][min(99, len(pop["raw"]) - 1)]),
    }
    age = drivers.fig3_age_cdf(seed)
    grid, cdf = age["grid_hours"], age["cdf"]
    out["fig3_age"] = {
        "median_hours": float(age["median_hours"][0]),
        "cdf_1day": float(cdf[int(np.argmin(np.abs(grid - 24.0)))]),
    }
    _, frac4 = drivers.fig4_windows(seed)["unweighted"]
    out["fig4_windows"] = {
        "le_2h": float(frac4[:2].sum()),
        "daily_spike_116_130h": float(frac4[115:130].sum()),
    }
    _, frac5 = drivers.fig5_windows_day(seed)["unweighted"]
    out["fig5_day_windows"] = {
        "le_1h": float(frac5[0]),
        "le_2h": float(frac5[:2].sum()),
    }
    cdf6 = drivers.fig6_access_cdf(n_jobs, seed)
    out["fig6_access_cdf"] = {
        "top1": float(cdf6[0]),
        "top10": float(cdf6[min(9, len(cdf6) - 1)]),
        "top20": float(cdf6[min(19, len(cdf6) - 1)]),
    }

    def cells_dict(cells) -> List[Dict]:
        return [
            {
                "scheduler": c.scheduler,
                "workload": c.workload,
                "locality": c.locality,
                "gmtt_normalized": c.gmtt_normalized,
                "slowdown": c.slowdown,
                "map_time_normalized": c.map_time_normalized,
            }
            for c in cells
        ]

    out["fig7_cct"] = cells_dict(drivers.fig7_cct(n_jobs, seed, jobs=jobs, cache=cache))
    out["fig10_ec2"] = cells_dict(drivers.fig10_ec2(n_jobs, seed, jobs=jobs, cache=cache))

    def sweep_dict(points) -> List[Dict]:
        return [p._asdict() for p in points]

    out["fig8a_p_sweep"] = sweep_dict(
        drivers.fig8a_p_sweep(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    )
    out["fig8b_threshold_sweep"] = sweep_dict(
        drivers.fig8b_threshold_sweep(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    )
    out["fig9a_budget_lru"] = sweep_dict(
        drivers.fig9a_budget_sweep_lru(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    )
    out["fig9b_budget_et"] = {
        str(p): sweep_dict(points)
        for p, points in drivers.fig9b_budget_sweep_et(
            n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache
        ).items()
    }
    out["fig11_uniformity"] = [
        p._asdict()
        for p in drivers.fig11_uniformity(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    ]
    out["ablation_disk_writes"] = [
        r._asdict()
        for r in ablation_disk_writes(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    ]
    out["ablation_oversubscription"] = [
        r._asdict()
        for r in ablation_oversubscription(n_jobs=n_jobs, seed=seed, jobs=jobs, cache=cache)
    ]
    return out


def _md_table(header: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def results_to_markdown(results: Dict) -> str:
    """Render the results tree as a readable markdown report."""
    parts: List[str] = []
    scale = results["scale"]
    parts.append(
        f"# DARE reproduction report\n\n"
        f"Scale: {scale['n_jobs']}-job traces, seed {scale['seed']}.\n"
    )

    parts.append("## Tables I-II\n")
    rows = [
        [name, f"{s['min']:.2f}", f"{s['mean']:.2f}", f"{s['max']:.2f}", f"{s['std']:.2f}"]
        for name, s in results["table1_rtt_ms"].items()
    ]
    parts.append("RTT (ms):\n\n" + _md_table(["cluster", "min", "mean", "max", "std"], rows))
    rows = [
        [name, f"{s['mean']:.1f}", f"{s['std']:.1f}"]
        for name, s in results["table2_bandwidth_mbps"].items()
    ]
    parts.append("\nBandwidth (MB/s):\n\n" + _md_table(["link", "mean", "std"], rows))
    ratios = results["bandwidth_ratios"]
    parts.append(
        f"\nnet/disk ratio: cct {100 * ratios['cct']:.1f}% vs "
        f"ec2 {100 * ratios['ec2']:.1f}% (paper: 74.6% vs 51.75%)\n"
    )

    parts.append("## Figures 2-6 (access patterns)\n")
    f2, f3 = results["fig2_popularity"], results["fig3_age"]
    f4, f5 = results["fig4_windows"], results["fig5_day_windows"]
    parts.append(
        f"- Fig. 2 popularity: rank1 {f2['rank1']:.0f}, rank100 {f2['rank100']:.0f}\n"
        f"- Fig. 3 age: median {f3['median_hours']:.1f} h, "
        f"CDF(<1 day) {f3['cdf_1day']:.2f}\n"
        f"- Fig. 4 windows: <=2h {f4['le_2h']:.2f}, "
        f"121h spike {f4['daily_spike_116_130h']:.2f}\n"
        f"- Fig. 5 day-2 windows: <=1h {f5['le_1h']:.2f}, <=2h {f5['le_2h']:.2f}\n"
    )

    for key, title in (("fig7_cct", "Figure 7 (CCT)"), ("fig10_ec2", "Figure 10 (EC2)")):
        parts.append(f"## {title}\n")
        rows = []
        for cell in results[key]:
            for policy in ("vanilla", "lru", "elephant-trap"):
                rows.append([
                    f"{cell['scheduler']}({cell['workload']})",
                    policy,
                    f"{cell['locality'][policy]:.3f}",
                    f"{cell['gmtt_normalized'][policy]:.3f}",
                    f"{cell['slowdown'][policy]:.2f}",
                ])
        parts.append(_md_table(
            ["cell", "policy", "locality", "gmtt/vanilla", "slowdown"], rows
        ))
        parts.append("")

    parts.append("## Figure 11 (placement uniformity)\n")
    rows = [
        [f"{p['p']:.1f}", f"{p['cv_before']:.3f}", f"{p['cv_after']:.3f}"]
        for p in results["fig11_uniformity"]
    ]
    parts.append(_md_table(["p", "cv before", "cv after"], rows))

    parts.append("\n## Ablations\n")
    rows = [
        [r["policy"], f"{r['locality']:.3f}", str(r["replication_disk_writes"])]
        for r in results["ablation_disk_writes"]
    ]
    parts.append("Disk writes (LRU vs ElephantTrap):\n\n"
                 + _md_table(["policy", "locality", "disk writes"], rows))
    rows = [
        [f"{r['cross_rack_factor']:.1f}", f"{r['vanilla_gmtt']:.1f}",
         f"{r['dare_gmtt']:.1f}",
         f"{100 * (1 - r['dare_gmtt'] / r['vanilla_gmtt']):.0f}%"]
        for r in results["ablation_oversubscription"]
    ]
    parts.append("\nOversubscription (GMTT):\n\n"
                 + _md_table(["cross-rack factor", "vanilla", "DARE", "cut"], rows))
    return "\n".join(parts) + "\n"


def write_report(
    out_dir: Union[str, Path],
    n_jobs: int = 500,
    seed: int = drivers.DEFAULT_SEED,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, Path]:
    """Run everything and write results.json + REPORT.md into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    results = collect_results(n_jobs, seed, jobs=jobs, cache=cache)
    json_path = out / "results.json"
    md_path = out / "REPORT.md"
    json_path.write_text(json.dumps(results, indent=1, sort_keys=True))
    md_path.write_text(results_to_markdown(results))
    return {"json": json_path, "markdown": md_path}
