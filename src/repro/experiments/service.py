"""Distributed sweep service: a coordinator + remote workers over TCP.

:mod:`repro.experiments.sweep` fans a grid out over *local* worker
processes.  This module promotes that executor to a small distributed
service so one grid can scale across machines while sharing one
content-addressed :class:`~repro.experiments.sweep.ResultCache`:

* :class:`WorkQueue` — the coordinator's durable state machine.  Every
  cell is tracked by its :func:`~repro.experiments.sweep.cache_key`
  through ``pending -> leased -> done | quarantined``: leases are
  time-bounded and reclaimed when they expire (a crashed or hung worker
  just loses its lease), failures retry with exponential backoff until a
  poison cell is quarantined after ``max_attempts``, and near the end of
  a grid idle workers *steal* a speculative second lease on the
  longest-running straggler (Wang/Joshi/Wornell-style task replication —
  whichever attempt finishes first wins).  Completions are idempotent:
  the first completion of a cell is canonical, and duplicate or late
  completions (lease expiry followed by a slow worker reporting anyway)
  are acknowledged but discarded deterministically.  The whole queue
  serializes to JSON, so a restarted coordinator resumes a half-done
  grid instead of recomputing it.
* :class:`Coordinator` — a :mod:`socketserver` TCP server speaking a
  JSON-lines protocol (one request line, one response line per
  connection) that guards a :class:`WorkQueue` with a lock, pre-resolves
  cache hits, stores completed results into its cache, and supports
  graceful draining (stop granting leases, wait for in-flight cells).
* :func:`run_worker` — the worker loop: lease a cell, execute it through
  the existing :func:`~repro.experiments.sweep.run_cells` machinery
  (jobs=1, with the worker's own cache), renew the lease from a
  background thread while the cell runs, and report the serialized
  result (or the failure traceback) back.  ``chaos`` specs inject
  deterministic faults — SIGKILL or a hang right after a lease, or a
  delayed completion — for the fault-injection tests and the CI smoke.

Because every cell is deterministic and content-addressed, the service
path is *byte-identical* to the serial ``run_cells`` path no matter how
many workers run, die, or race (``tests/test_sweep_service.py`` and the
CI ``sweep-service`` job assert exactly that).

``python -m repro sweep --serve/--worker/--status`` exposes all of this
on the command line; see ``docs/SWEEP_SERVICE.md`` for the protocol and
the failure matrix.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple, Union

from repro.experiments.serialize import (
    canonical_json,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.sweep import (
    CellOutcome,
    ResultCache,
    SweepCell,
    WorkloadSpec,
    cache_key,
    run_cells,
)

#: queue journal / wire format version
QUEUE_FORMAT = 1

#: cell states
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

_STATES = (PENDING, LEASED, DONE, QUARANTINED)


class ServiceError(RuntimeError):
    """A worker or client could not talk to the coordinator."""


class WorkerShutdown(Exception):
    """Raised inside :func:`run_worker` when SIGTERM/SIGINT arrives.

    The worker catches it, releases its in-flight lease back to the
    queue (``fail`` with ``requeue`` — no attempt is charged: shutdown
    is not the cell's fault), and exits cleanly instead of abandoning
    the lease until expiry.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"worker received signal {signum}")
        self.signum = signum


# -- wire helpers -------------------------------------------------------------


def parse_address(spec: str) -> Tuple[str, int]:
    """``'HOST:PORT'`` (or bare ``'PORT'``, meaning localhost) -> tuple."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad address {spec!r}; expected HOST:PORT")
    if not host:
        host = "127.0.0.1"
    return host, port


def request(address: Tuple[str, int], doc: Dict, timeout: float = 30.0) -> Dict:
    """One protocol round-trip: connect, send one line, read one line."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        fh = sock.makefile("rwb")
        fh.write(json.dumps(doc).encode() + b"\n")
        fh.flush()
        line = fh.readline()
    if not line:
        raise ServiceError("coordinator closed the connection without replying")
    return json.loads(line)


def cell_to_doc(cell: SweepCell) -> Dict:
    """A :class:`SweepCell` as wire/journal-safe plain data."""
    return {
        "config": config_to_dict(cell.config),
        "workload": list(cell.workload),
        "tag": cell.tag,
        "x": cell.x,
    }


def cell_from_doc(doc: Dict) -> SweepCell:
    """Inverse of :func:`cell_to_doc`."""
    return SweepCell(
        config=config_from_dict(doc["config"]),
        workload=WorkloadSpec(*doc["workload"]),
        tag=doc["tag"],
        x=doc["x"],
    )


# -- the durable work queue ---------------------------------------------------


@dataclass
class QueueEntry:
    """One cell's lifecycle record inside the :class:`WorkQueue`."""

    key: str
    cell: Dict  # cell_to_doc form (journal-safe)
    state: str = PENDING
    attempts: int = 0
    #: earliest wall-clock time the cell may be leased again (backoff)
    not_before: float = 0.0
    #: active leases: lease_id -> {"worker", "granted", "deadline"}
    leases: Dict[str, Dict] = field(default_factory=dict)
    error: str = ""
    #: one line per failed attempt, for the journal/status
    history: List[str] = field(default_factory=list)
    result: Optional[Dict] = None
    from_cache: bool = False
    duplicates: int = 0
    completed_by: str = ""

    def to_doc(self) -> Dict:
        return {
            "key": self.key,
            "cell": self.cell,
            "state": self.state,
            "attempts": self.attempts,
            "not_before": self.not_before,
            "leases": self.leases,
            "error": self.error,
            "history": self.history,
            "result": self.result,
            "from_cache": self.from_cache,
            "duplicates": self.duplicates,
            "completed_by": self.completed_by,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "QueueEntry":
        return cls(**doc)


class WorkQueue:
    """Lease-based work queue over content-addressed sweep cells.

    Single-threaded by design (the :class:`Coordinator` serializes access
    with a lock); ``clock`` is injectable so tests and the hypothesis
    state machine can drive logical time.  When ``path`` is set, every
    transition atomically rewrites the JSON journal, and
    :meth:`WorkQueue.load` rebuilds the queue — leases held by the dead
    coordinator's workers are reclaimed to ``pending`` on load (without
    charging an attempt: the restart was not the cell's fault).

    Transitions:

    * ``lease`` hands out the first ready pending cell; with none ready
      it *steals* — grants a speculative duplicate lease on the leased
      cell whose oldest lease has run longest, once that age exceeds
      ``steal_after_s`` (straggler re-execution; ``max_leases`` bounds
      the replication factor).
    * ``complete`` is first-writer-wins: the first completion of a cell
      becomes its one canonical result (cells are deterministic, so any
      racing attempt computed identical bytes); later completions are
      counted as duplicates and discarded, whether their lease is still
      live, expired, or stolen-from.
    * ``fail`` and lease expiry charge an attempt *only when the cell's
      last active lease is gone* (a stolen sibling may still win);
      ``attempts >= max_attempts`` quarantines the cell as poison,
      otherwise it re-enters ``pending`` after an exponential backoff
      (``backoff_s * 2**(attempts-1)``, capped at ``backoff_cap_s``).
    """

    def __init__(
        self,
        lease_s: float = 60.0,
        max_attempts: int = 3,
        backoff_s: float = 1.0,
        backoff_cap_s: float = 60.0,
        steal_after_s: Optional[float] = None,
        max_leases: int = 2,
        clock: Callable[[], float] = time.time,
        path: Union[str, os.PathLike, None] = None,
    ) -> None:
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.steal_after_s = lease_s / 2.0 if steal_after_s is None else steal_after_s
        self.max_leases = max_leases
        self._clock = clock
        self.path = os.fspath(path) if path is not None else ""
        self.entries: Dict[str, QueueEntry] = {}
        self.order: List[str] = []
        self.draining = False
        self.lease_seq = 0
        # counters (persisted, surfaced by the status op)
        self.leases_granted = 0
        self.steals = 0
        self.expirations = 0
        self.completions = 0
        self.duplicates = 0
        self.late_completions = 0
        self.failures = 0
        self.releases = 0

    # -- membership -----------------------------------------------------------

    def add_cells(self, cells: Iterable[SweepCell]) -> int:
        """Enqueue cells, deduplicated by cache key; returns how many were new.

        Re-adding cells already present (e.g. resuming a journal with the
        same grid) is a no-op per cell, so restart + re-submit is
        idempotent.
        """
        added = 0
        for cell in cells:
            key = cache_key(cell.config, cell.workload)
            if key in self.entries:
                continue
            self.entries[key] = QueueEntry(key=key, cell=cell_to_doc(cell))
            self.order.append(key)
            added += 1
        if added:
            self._save()
        return added

    def mark_cached(self, key: str, result_doc: Dict) -> None:
        """Resolve a pending cell from the result cache (no lease needed)."""
        entry = self.entries[key]
        if entry.state != PENDING:
            return
        entry.state = DONE
        entry.result = result_doc
        entry.from_cache = True
        entry.error = ""
        self._save()

    # -- queries --------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every cell is done or quarantined."""
        return all(e.state in (DONE, QUARANTINED) for e in self.entries.values())

    def counts(self) -> Dict[str, int]:
        """Cells per state."""
        out = {state: 0 for state in _STATES}
        for entry in self.entries.values():
            out[entry.state] += 1
        return out

    def active_leases(self) -> int:
        """Number of live leases across all cells."""
        return sum(len(e.leases) for e in self.entries.values())

    def status_doc(self) -> Dict:
        """The status snapshot served over the wire."""
        doc = {
            "format": QUEUE_FORMAT,
            "total": len(self.entries),
            "finished": self.done,
            "draining": self.draining,
            "active_leases": self.active_leases(),
            "leases_granted": self.leases_granted,
            "steals": self.steals,
            "expirations": self.expirations,
            "completions": self.completions,
            "duplicates": self.duplicates,
            "late_completions": self.late_completions,
            "failures": self.failures,
            "releases": self.releases,
        }
        doc.update(self.counts())
        return doc

    def outcomes(self) -> List[CellOutcome]:
        """One :class:`CellOutcome` per cell, in input order."""
        out = []
        for key in self.order:
            entry = self.entries[key]
            result = None if entry.result is None else result_from_dict(entry.result)
            out.append(CellOutcome(
                cell=cell_from_doc(entry.cell),
                result=result,
                error=entry.error,
                from_cache=entry.from_cache,
                key=key,
            ))
        return out

    # -- transitions ----------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> int:
        """Reclaim every lease past its deadline; returns how many expired.

        Dropping a cell's *last* live lease charges a failed attempt
        (backoff, then quarantine after ``max_attempts``); dropping one of
        several leaves the surviving attempt in charge.
        """
        now = self._clock() if now is None else now
        expired = 0
        dirty = False
        for entry in self.entries.values():
            if entry.state != LEASED:
                continue
            stale = [
                (lid, lease) for lid, lease in entry.leases.items()
                if lease["deadline"] <= now
            ]
            for lid, lease in stale:
                del entry.leases[lid]
                expired += 1
                self.expirations += 1
                dirty = True
                if not entry.leases:
                    self._attempt_failed(
                        entry,
                        f"lease {lid} (worker {lease['worker']}) expired "
                        f"after {self.lease_s:g}s",
                        now,
                    )
        if dirty:
            self._save()
        return expired

    def lease(self, worker: str) -> Dict:
        """Hand one cell to ``worker``; the reply doc mirrors the wire form.

        Returns ``{"done": true}`` when the grid is finished (or the
        queue is draining), ``{"wait": true, "retry_s": s}`` when nothing
        is ready yet, else the leased cell with its ``lease_id``.
        """
        now = self._clock()
        self.expire(now)
        if self.done or self.draining:
            return {"ok": True, "done": True}
        entry = self._next_pending(now)
        stolen = False
        if entry is None:
            entry = self._steal_candidate(now)
            stolen = entry is not None
        if entry is None:
            return {"ok": True, "wait": True, "retry_s": self._retry_hint(now)}
        lease_id = f"L{self.lease_seq}"
        self.lease_seq += 1
        entry.leases[lease_id] = {
            "worker": worker,
            "granted": now,
            "deadline": now + self.lease_s,
        }
        entry.state = LEASED
        self.leases_granted += 1
        if stolen:
            self.steals += 1
        self._save()
        return {
            "ok": True,
            "cell": entry.cell,
            "key": entry.key,
            "lease_id": lease_id,
            "deadline_s": self.lease_s,
            "attempt": entry.attempts + 1,
            "stolen": stolen,
        }

    def renew(self, key: str, lease_id: str) -> bool:
        """Extend a live lease's deadline; False if it was lost/expired."""
        entry = self.entries.get(key)
        if entry is None or entry.state != LEASED or lease_id not in entry.leases:
            return False
        entry.leases[lease_id]["deadline"] = self._clock() + self.lease_s
        self._save()
        return True

    def complete(
        self,
        key: str,
        lease_id: str,
        result_doc: Dict,
        worker: str = "",
        cached: bool = False,
    ) -> Dict:
        """Record a finished cell; first completion wins, rest are duplicates."""
        entry = self.entries.get(key)
        if entry is None:
            return {"ok": False, "error": f"unknown cell key {key!r}"}
        if entry.state == DONE:
            entry.duplicates += 1
            self.duplicates += 1
            self._save()
            return {"ok": True, "accepted": False, "reason": "duplicate"}
        if lease_id not in entry.leases:
            # expired/stolen lease reporting late — the result is still the
            # deterministic result of this cell, so it wins iff it is first
            self.late_completions += 1
        entry.state = DONE
        entry.result = result_doc
        entry.from_cache = cached
        entry.error = ""
        entry.leases = {}
        entry.completed_by = worker
        self.completions += 1
        self._save()
        return {"ok": True, "accepted": True}

    def fail(
        self,
        key: str,
        lease_id: str,
        error: str,
        now: Optional[float] = None,
        requeue: bool = False,
    ) -> Dict:
        """Record a failed attempt under a live lease (backoff/quarantine).

        ``requeue=True`` is a *voluntary release* — a gracefully shutting
        down worker handing its in-flight cell back.  The cell returns to
        ``pending`` immediately, with no attempt charged and no backoff:
        the shutdown was not the cell's fault.
        """
        now = self._clock() if now is None else now
        entry = self.entries.get(key)
        if entry is None:
            return {"ok": False, "error": f"unknown cell key {key!r}"}
        if entry.state == DONE:
            return {"ok": True, "accepted": False, "reason": "already-done"}
        if lease_id not in entry.leases:
            # the lease already expired; that expiry was charged as the attempt
            return {"ok": True, "accepted": False, "reason": "stale-lease"}
        del entry.leases[lease_id]
        if requeue:
            self.releases += 1
            entry.history.append(_last_line(error))
            if not entry.leases:
                entry.state = PENDING
                entry.not_before = now
            self._save()
            return {"ok": True, "accepted": True, "state": entry.state}
        self.failures += 1
        if entry.leases:
            entry.history.append(_last_line(error))
            self._save()
            return {"ok": True, "accepted": True, "state": entry.state}
        self._attempt_failed(entry, error, now)
        self._save()
        return {"ok": True, "accepted": True, "state": entry.state}

    def drain(self) -> None:
        """Stop granting leases; in-flight cells may still complete."""
        self.draining = True
        self._save()

    # -- internals ------------------------------------------------------------

    def _next_pending(self, now: float) -> Optional[QueueEntry]:
        for key in self.order:
            entry = self.entries[key]
            if entry.state == PENDING and entry.not_before <= now:
                return entry
        return None

    def _steal_candidate(self, now: float) -> Optional[QueueEntry]:
        """The longest-running leased straggler eligible for re-execution."""
        best: Optional[QueueEntry] = None
        best_age = self.steal_after_s
        for key in self.order:
            entry = self.entries[key]
            if entry.state != LEASED or len(entry.leases) >= self.max_leases:
                continue
            oldest = min(lease["granted"] for lease in entry.leases.values())
            age = now - oldest
            if age >= best_age:
                best, best_age = entry, age
        return best

    def _retry_hint(self, now: float) -> float:
        """Seconds until something could plausibly become available."""
        horizons = []
        for entry in self.entries.values():
            if entry.state == PENDING:
                horizons.append(max(0.0, entry.not_before - now))
            elif entry.state == LEASED:
                horizons.append(
                    max(0.0, min(l["deadline"] for l in entry.leases.values()) - now)
                )
        return min(horizons) if horizons else 1.0

    def _attempt_failed(self, entry: QueueEntry, error: str, now: float) -> None:
        entry.attempts += 1
        entry.history.append(_last_line(error))
        if entry.attempts >= self.max_attempts:
            entry.state = QUARANTINED
            entry.error = error
        else:
            entry.state = PENDING
            backoff = min(
                self.backoff_cap_s, self.backoff_s * 2 ** (entry.attempts - 1)
            )
            entry.not_before = now + backoff
            entry.error = ""

    # -- persistence ----------------------------------------------------------

    def to_doc(self) -> Dict:
        """The full queue as journal-safe plain data."""
        return {
            "format": QUEUE_FORMAT,
            "lease_s": self.lease_s,
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "steal_after_s": self.steal_after_s,
            "max_leases": self.max_leases,
            "lease_seq": self.lease_seq,
            "counters": {
                "leases_granted": self.leases_granted,
                "steals": self.steals,
                "expirations": self.expirations,
                "completions": self.completions,
                "duplicates": self.duplicates,
                "late_completions": self.late_completions,
                "failures": self.failures,
                "releases": self.releases,
            },
            "cells": [self.entries[key].to_doc() for key in self.order],
        }

    def _save(self) -> None:
        if not self.path:
            return
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            fh.write(canonical_json(self.to_doc()) + "\n")
        os.replace(tmp, self.path)

    @classmethod
    def load(
        cls,
        path: Union[str, os.PathLike],
        clock: Callable[[], float] = time.time,
    ) -> "WorkQueue":
        """Rebuild a queue from its journal (coordinator restart).

        Leases granted by the previous coordinator are reclaimed to
        ``pending`` immediately — their workers are gone or will report
        late, and late completions are handled by first-writer-wins.
        """
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("format") != QUEUE_FORMAT:
            raise ValueError(f"unsupported queue format {doc.get('format')!r}")
        queue = cls(
            lease_s=doc["lease_s"],
            max_attempts=doc["max_attempts"],
            backoff_s=doc["backoff_s"],
            backoff_cap_s=doc["backoff_cap_s"],
            steal_after_s=doc["steal_after_s"],
            max_leases=doc["max_leases"],
            clock=clock,
            path=path,
        )
        queue.lease_seq = doc["lease_seq"]
        for name, value in doc["counters"].items():
            setattr(queue, name, value)
        for cell_doc in doc["cells"]:
            entry = QueueEntry.from_doc(cell_doc)
            if entry.state == LEASED:
                entry.leases = {}
                entry.state = PENDING
            queue.entries[entry.key] = entry
            queue.order.append(entry.key)
        return queue


def _last_line(text: str) -> str:
    lines = text.strip().splitlines()
    return lines[-1] if lines else "unknown error"


def format_status_table(doc: Dict) -> str:
    """Render a queue status document as the human-readable table.

    The document is exactly :meth:`WorkQueue.status_doc` — the same
    serialization ``repro sweep --status --json`` prints and the server's
    ``GET /api/cluster`` embeds, so scripts parse one format and humans
    read this table.
    """
    lines = [
        f"cells: {doc['total']}  "
        f"({doc['pending']} pending / {doc['leased']} leased / "
        f"{doc['done']} done / {doc['quarantined']} quarantined)",
        f"  finished        {'yes' if doc['finished'] else 'no':<6s}"
        f"  draining        {'yes' if doc['draining'] else 'no'}",
        f"  active leases   {doc['active_leases']:<6d}"
        f"  leases granted  {doc['leases_granted']}",
        f"  completions     {doc['completions']:<6d}"
        f"  duplicates      {doc['duplicates']}",
        f"  expirations     {doc['expirations']:<6d}"
        f"  late            {doc['late_completions']}",
        f"  failures        {doc['failures']:<6d}"
        f"  steals          {doc['steals']}",
        f"  releases        {doc.get('releases', 0)}",
    ]
    return "\n".join(lines)


# -- the coordinator ----------------------------------------------------------


#: protocol hardening defaults: a handler thread never waits longer than
#: this for the request line, and never buffers more than this many bytes
READ_TIMEOUT_S = 30.0
MAX_REQUEST_BYTES = 1_048_576


class _ServiceServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    coordinator: "Coordinator"
    read_timeout_s = READ_TIMEOUT_S
    max_request_bytes = MAX_REQUEST_BYTES


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised over real sockets
        server = self.server
        limit = int(server.max_request_bytes)  # type: ignore[attr-defined]
        # a stalled client trips the read timeout and the handler thread
        # returns; an oversized request is cut off at the size limit and
        # rejected — either way the thread is never pinned
        self.connection.settimeout(server.read_timeout_s)  # type: ignore[attr-defined]
        try:
            line = self.rfile.readline(limit + 1)
        except OSError:  # includes socket.timeout
            return
        if not line:
            return
        if len(line) > limit:
            reply: Dict = {
                "ok": False,
                "error": f"request exceeds {limit} bytes",
            }
        else:
            try:
                doc = json.loads(line)
            except ValueError:
                reply = {"ok": False, "error": "request is not valid JSON"}
            else:
                reply = self.server.coordinator.dispatch(doc)  # type: ignore[attr-defined]
        try:
            self.wfile.write((json.dumps(reply, sort_keys=True) + "\n").encode())
        except OSError:
            pass


class Coordinator:
    """The sweep service's server side: a locked WorkQueue behind TCP.

    Construction pre-resolves cache hits exactly like ``run_cells`` does
    (cells that request a trace file bypass cache reads); accepted
    completions are stored back into ``cache`` so the whole grid shares
    one content-addressed store.  ``queue_path`` makes the queue durable:
    if the journal already exists the grid resumes from it, with
    ``add_cells`` deduplication absorbing the re-submitted cells.
    """

    def __init__(
        self,
        cells: Iterable[SweepCell],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_path: Union[str, os.PathLike] = "",
        cache: Union[ResultCache, str, None] = None,
        lease_s: float = 60.0,
        max_attempts: int = 3,
        backoff_s: float = 1.0,
        backoff_cap_s: float = 60.0,
        steal_after_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        read_timeout_s: float = READ_TIMEOUT_S,
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ) -> None:
        if isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache = cache
        self._lock = threading.Lock()
        self._clock = clock
        if queue_path and os.path.exists(queue_path):
            self.queue = WorkQueue.load(queue_path, clock=clock)
            self.resumed = True
        else:
            self.queue = WorkQueue(
                lease_s=lease_s,
                max_attempts=max_attempts,
                backoff_s=backoff_s,
                backoff_cap_s=backoff_cap_s,
                steal_after_s=steal_after_s,
                clock=clock,
                path=queue_path,
            )
            self.resumed = False
        self.queue.add_cells(cells)
        if self.cache is not None:
            for key in self.queue.order:
                entry = self.queue.entries[key]
                if entry.state != PENDING:
                    continue
                if entry.cell["config"].get("trace_path"):
                    continue  # must really run so the trace gets written
                hit = self.cache.load(key)
                if hit is not None:
                    self.queue.mark_cached(key, result_to_dict(hit))
        self._server = _ServiceServer((host, port), _ServiceHandler)
        self._server.coordinator = self
        self._server.read_timeout_s = read_timeout_s
        self._server.max_request_bytes = max_request_bytes
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "Coordinator":
        """Serve requests on a background thread."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def dispatch(self, doc: Dict) -> Dict:
        """Handle one protocol request (thread-safe)."""
        op = doc.get("op")
        with self._lock:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "lease":
                return self.queue.lease(str(doc.get("worker", "")))
            if op == "renew":
                ok = self.queue.renew(doc.get("key", ""), doc.get("lease_id", ""))
                return {"ok": ok}
            if op == "complete":
                reply = self.queue.complete(
                    doc.get("key", ""),
                    doc.get("lease_id", ""),
                    doc.get("result", {}),
                    worker=str(doc.get("worker", "")),
                    cached=bool(doc.get("cached", False)),
                )
                if reply.get("accepted") and self.cache is not None:
                    self.cache.store(doc["key"], doc["result"])
                return reply
            if op == "fail":
                return self.queue.fail(
                    doc.get("key", ""),
                    doc.get("lease_id", ""),
                    str(doc.get("error", "")),
                    requeue=bool(doc.get("requeue", False)),
                )
            if op == "status":
                return {"ok": True, "status": self.queue.status_doc()}
            if op == "drain":
                self.queue.drain()
                return {"ok": True, "draining": True}
            return {"ok": False, "error": f"unknown op {op!r}"}

    def wait(self, timeout: Optional[float] = None, poll_s: float = 0.1) -> bool:
        """Block until the grid is done (or drained); False on timeout.

        The wait loop doubles as the lease reaper: expired leases are
        reclaimed even while no worker is polling.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                self.queue.expire()
                finished = self.queue.done or (
                    self.queue.draining and self.queue.active_leases() == 0
                )
            if finished:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    def drain(self) -> None:
        """Graceful shutdown: stop granting leases, let in-flight cells land."""
        with self._lock:
            self.queue.drain()

    def outcomes(self) -> List[CellOutcome]:
        """Per-cell outcomes in input order (thread-safe snapshot)."""
        with self._lock:
            return self.queue.outcomes()

    def status(self) -> Dict:
        """The queue's status snapshot (thread-safe)."""
        with self._lock:
            return self.queue.status_doc()

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# -- the worker ---------------------------------------------------------------


class ChaosSpec(NamedTuple):
    """Deterministic fault injection for tests and the CI smoke.

    ``kind`` is one of ``kill-after-lease`` (SIGKILL self right after the
    Nth lease is granted — a worker crash mid-cell), ``hang-after-lease``
    (sleep forever holding the Nth lease — a frozen worker), or
    ``delay-complete`` (sleep ``delay_s`` before reporting the Nth
    completion — a straggler whose lease may expire under it).
    """

    kind: str = ""
    n: int = 1
    delay_s: float = 0.0


def parse_chaos(spec: str) -> ChaosSpec:
    """Parse ``kill-after-lease:N`` / ``hang-after-lease:N`` /
    ``delay-complete:SECONDS`` (empty = no chaos)."""
    if not spec:
        return ChaosSpec()
    kind, _, arg = spec.partition(":")
    if kind in ("kill-after-lease", "hang-after-lease"):
        return ChaosSpec(kind, n=int(arg) if arg else 1)
    if kind == "delay-complete":
        return ChaosSpec(kind, delay_s=float(arg) if arg else 1.0)
    raise ValueError(
        f"unknown chaos spec {spec!r}; expected kill-after-lease:N, "
        "hang-after-lease:N, or delay-complete:SECONDS"
    )


@dataclass
class WorkerStats:
    """What one worker loop did before the grid finished."""

    worker_id: str
    leases: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    rejected: int = 0  # completions the coordinator discarded as duplicates
    released: int = 0  # in-flight leases handed back on SIGTERM/SIGINT
    #: signal number that stopped the loop early (0 = ran to completion)
    stopped_by_signal: int = 0


def run_worker(
    address: Tuple[str, int],
    worker_id: Optional[str] = None,
    cache: Union[ResultCache, str, None] = None,
    no_cache: bool = False,
    poll_s: float = 0.5,
    chaos: Union[str, ChaosSpec] = "",
    max_cells: Optional[int] = None,
    request_timeout: float = 30.0,
    handle_signals: bool = True,
) -> WorkerStats:
    """Pull cells from a coordinator until the grid is done.

    Each leased cell executes through :func:`run_cells` (jobs=1, with the
    worker's own ``cache``) while a daemon thread renews the lease every
    third of its deadline; the serialized result (or the traceback) is
    then reported back.  Transient connection errors retry; a coordinator
    that disappears *after* this worker did real work is treated as a
    finished grid (it exits once everything is done).

    SIGTERM/SIGINT stop the loop gracefully (``handle_signals``, main
    thread only): the in-flight lease is *released* back to the queue —
    ``fail`` with ``requeue``, charging no attempt — and the function
    returns with ``stats.stopped_by_signal`` set, instead of abandoning
    the lease until its expiry reclaims the cell.
    """
    spec = parse_chaos(chaos) if isinstance(chaos, str) else chaos
    if isinstance(cache, str):
        cache = ResultCache(cache)
    stats = WorkerStats(worker_id or f"{socket.gethostname()}-{os.getpid()}")

    def _on_signal(signum, frame) -> None:
        raise WorkerShutdown(signum)

    previous = {}
    if handle_signals and threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
    in_flight: Optional[Tuple[str, str]] = None
    connect_failures = 0
    try:
        while True:
            try:
                reply = request(
                    address, {"op": "lease", "worker": stats.worker_id},
                    timeout=request_timeout,
                )
            except (OSError, ServiceError) as exc:
                connect_failures += 1
                if stats.leases and connect_failures >= 3:
                    break  # grid finished and the coordinator went away
                if connect_failures >= 20:
                    raise ServiceError(
                        f"cannot reach coordinator at {address[0]}:{address[1]}: {exc}"
                    )
                time.sleep(poll_s)
                continue
            connect_failures = 0
            if reply.get("done"):
                break
            if reply.get("wait"):
                time.sleep(max(0.05, min(poll_s, float(reply.get("retry_s", poll_s)))))
                continue
            stats.leases += 1
            key = reply["key"]
            lease_id = reply["lease_id"]
            in_flight = (key, lease_id)
            if spec.kind == "kill-after-lease" and stats.leases >= spec.n:
                os.kill(os.getpid(), signal.SIGKILL)  # mid-cell crash, no cleanup
            if spec.kind == "hang-after-lease" and stats.leases >= spec.n:
                while True:  # frozen worker: holds the lease forever
                    time.sleep(3600.0)
            cell = cell_from_doc(reply["cell"])
            stop = threading.Event()
            renew_every = max(0.05, float(reply["deadline_s"]) / 3.0)

            def _renew(key: str = key, lease_id: str = lease_id) -> None:
                while not stop.wait(renew_every):
                    try:
                        request(address, {
                            "op": "renew", "key": key, "lease_id": lease_id,
                            "worker": stats.worker_id,
                        }, timeout=request_timeout)
                    except (OSError, ServiceError):
                        return
            renewer = threading.Thread(target=_renew, daemon=True)
            renewer.start()
            try:
                [outcome] = run_cells([cell], jobs=1, cache=cache, no_cache=no_cache)
            finally:
                stop.set()
                renewer.join(timeout=renew_every + 1.0)
            if spec.kind == "delay-complete" and stats.leases >= spec.n:
                time.sleep(spec.delay_s)  # straggler: lease may expire under us
            if outcome.ok:
                msg = {
                    "op": "complete", "worker": stats.worker_id, "key": key,
                    "lease_id": lease_id, "result": result_to_dict(outcome.result),
                    "cached": outcome.from_cache,
                }
            else:
                msg = {
                    "op": "fail", "worker": stats.worker_id, "key": key,
                    "lease_id": lease_id, "error": outcome.error,
                }
            try:
                ack = request(address, msg, timeout=request_timeout)
            except (OSError, ServiceError):
                in_flight = None
                continue  # the lease will expire and the cell be re-run
            in_flight = None
            if not outcome.ok:
                stats.failed += 1
            elif ack.get("accepted"):
                stats.completed += 1
                if outcome.from_cache:
                    stats.cached += 1
            else:
                stats.rejected += 1
            if max_cells is not None and stats.leases >= max_cells:
                break
    except WorkerShutdown as shutdown:
        stats.stopped_by_signal = shutdown.signum
        if in_flight is not None:
            key, lease_id = in_flight
            try:
                request(address, {
                    "op": "fail", "worker": stats.worker_id, "key": key,
                    "lease_id": lease_id, "requeue": True,
                    "error": f"worker {stats.worker_id} shutting down "
                             f"(signal {shutdown.signum})",
                }, timeout=request_timeout)
                stats.released += 1
            except (OSError, ServiceError):
                pass  # coordinator gone too; the lease will expire
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return stats
