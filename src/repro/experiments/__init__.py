"""End-to-end experiment harness.

:func:`~repro.experiments.runner.run_experiment` assembles the full stack —
cluster, HDFS, DARE, scheduler, JobTracker — replays a workload trace, and
returns an :class:`~repro.experiments.runner.ExperimentResult` with every
metric the paper reports.

:mod:`repro.experiments.tables` and :mod:`repro.experiments.figures` hold
one driver per evaluation table/figure; :mod:`repro.experiments.ablations`
adds design-choice ablations beyond the paper.

:mod:`repro.experiments.sweep` executes grids of experiment cells across
worker processes with a content-addressed result cache; every figure and
ablation driver runs on top of it (``jobs=``/``cache=`` keyword
arguments), and ``repro sweep`` exposes it from the command line.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    make_scheduler,
    run_experiment,
)
from repro.experiments.tables import (
    bandwidth_ratios,
    fig1_hop_distribution,
    table1_rtt,
    table2_bandwidth,
)
from repro.experiments.sweep import (
    CellOutcome,
    ResultCache,
    SweepCell,
    SweepError,
    WorkloadSpec,
    build_grid,
    cache_key,
    results_of,
    run_cells,
)
from repro.experiments.figures import (
    ET_CONFIG,
    LRU_CONFIG,
    Fig7Cell,
    Fig11Point,
    SweepPoint,
    fig2_popularity,
    fig3_age_cdf,
    fig4_windows,
    fig5_windows_day,
    fig6_access_cdf,
    fig7_cct,
    fig8a_p_sweep,
    fig8b_threshold_sweep,
    fig9a_budget_sweep_lru,
    fig9b_budget_sweep_et,
    fig10_ec2,
    fig11_uniformity,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "make_scheduler",
    "run_experiment",
    "table1_rtt",
    "table2_bandwidth",
    "bandwidth_ratios",
    "fig1_hop_distribution",
    "ET_CONFIG",
    "LRU_CONFIG",
    "Fig7Cell",
    "Fig11Point",
    "SweepPoint",
    "fig2_popularity",
    "fig3_age_cdf",
    "fig4_windows",
    "fig5_windows_day",
    "fig6_access_cdf",
    "fig7_cct",
    "fig8a_p_sweep",
    "fig8b_threshold_sweep",
    "fig9a_budget_sweep_lru",
    "fig9b_budget_sweep_et",
    "fig10_ec2",
    "fig11_uniformity",
    "CellOutcome",
    "ResultCache",
    "SweepCell",
    "SweepError",
    "WorkloadSpec",
    "build_grid",
    "cache_key",
    "results_of",
    "run_cells",
]
