"""The simulation engine: a clock plus the event loop."""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Callable, Optional, TYPE_CHECKING

from repro.observability.trace import ENGINE_EVENT, NULL_TRACER, Tracer
from repro.simulation.events import Event, EventQueue

#: bound once: Event.__new__ lookup is on the per-event scheduling path
_new_event = Event.__new__

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.profiling import CallbackProfiler


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Engine:
    """Drives a discrete-event simulation.

    The engine owns the clock.  Components schedule work with
    :meth:`schedule` / :meth:`schedule_in` and the engine fires callbacks in
    nondecreasing time order.  The loop stops when the queue drains, when
    ``until`` is reached, or when :meth:`stop` is called from a callback.

    The event loop has two shapes.  When nothing wants per-event hooks —
    no ``until`` horizon, the ``engine.event`` firehose off (always true for
    :data:`NULL_TRACER`), no profiler — :meth:`run` drops into a fast path
    that inlines the queue pop and touches nothing but the heap, the clock,
    and the callback.  Any hook switches to the general loop, which behaves
    identically event-for-event (the determinism suite holds traces from
    both loops byte-identical).

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5.0]
    """

    __slots__ = (
        "now",
        "_queue",
        "_running",
        "_stopped",
        "events_processed",
        "max_events",
        "tracer",
        "profiler",
        "drained_at",
    )

    def __init__(self, max_events: int = 200_000_000, tracer: Tracer = NULL_TRACER) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: clock value at which the queue emptied during the last
        #: ``run(until=...)`` — ``None`` unless that run drained early and
        #: had its clock advanced to the horizon.  Lets drivers that pause
        #: a simulation in epochs (the rollout engine) recover the true
        #: end time instead of reporting the inflated horizon.
        self.drained_at: Optional[float] = None
        #: hard safety limit against runaway simulations
        self.max_events = max_events
        #: trace bus; per-callback records require ``tracer.engine_events``
        self.tracer = tracer
        #: optional :class:`CallbackProfiler` timing sampled callbacks
        self.profiler: Optional["CallbackProfiler"] = None

    # -- scheduling ------------------------------------------------------
    #
    # schedule/schedule_in are the simulator's hottest entry points (one
    # call per event fired, for chained periodic processes), so both inline
    # EventQueue.push — including the Event construction, via __new__ plus
    # slot stores, which skips the __init__ call frame.  Any change here
    # must be mirrored in EventQueue.push/repush.

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label!r} at t={time} in the past (now={self.now})"
            )
        queue = self._queue
        ev: Event = _new_event(Event)
        ev.time = time
        ev.seq = queue._seq
        ev.action = action
        ev.label = label
        ev.cancelled = False
        ev.fired = False
        queue._seq += 1
        queue._live += 1
        _heappush(queue._heap, ev)
        return ev

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label!r}")
        queue = self._queue
        ev: Event = _new_event(Event)
        ev.time = self.now + delay
        ev.seq = queue._seq
        ev.action = action
        ev.label = label
        ev.cancelled = False
        ev.fired = False
        queue._seq += 1
        queue._live += 1
        _heappush(queue._heap, ev)
        return ev

    def reschedule_in(
        self, delay: float, event: Event, label: Optional[str] = None
    ) -> Event:
        """Re-arm a fired event ``delay`` seconds from now, reusing it.

        For periodic processes (heartbeats): identical semantics to
        ``schedule_in(delay, event.action, ...)`` — including the fresh
        ``seq`` — without allocating a new :class:`Event` every period.
        ``label`` of ``None`` keeps the event's current label.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {event.label!r}")
        return self._queue.repush(event, self.now + delay, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self._queue.cancel(event)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stopped.

        When ``until`` is given, the clock is advanced to exactly ``until``
        if the simulation would otherwise end earlier, mirroring SimPy's
        semantics so periodic processes can be resumed by a later ``run``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        self.drained_at = None
        tracer = self.tracer
        # snapshot the firehose flag: one bool check per run, not per event
        trace_events = tracer.enabled and tracer.engine_events
        profiler = self.profiler
        if profiler is not None and not profiler.enabled:
            profiler = None
        queue = self._queue
        limit = self.max_events
        try:
            if until is None and not trace_events and profiler is None:
                # -- fast path: the pop is inlined and nothing else runs.
                # ``heap`` must stay bound to the queue's own list object:
                # callbacks push into it and compaction mutates it in place.
                heap = queue._heap
                heappop = heapq.heappop
                processed = self.events_processed
                try:
                    while heap and not self._stopped:
                        ev = heappop(heap)
                        if ev.cancelled:
                            queue._cancelled -= 1
                            continue
                        ev.fired = True
                        queue._live -= 1
                        self.now = ev.time
                        processed += 1
                        if processed > limit:
                            raise SimulationError(
                                f"exceeded max_events={limit}; runaway simulation?"
                            )
                        ev.action()
                finally:
                    self.events_processed = processed
                return

            # -- general path: horizon checks and per-event hooks
            while queue and not self._stopped:
                if until is not None:
                    next_time = queue.peek_time()
                    if next_time is not None and next_time > until:
                        self.now = until
                        return
                ev = queue.pop()
                if ev is None:
                    break
                self.now = ev.time
                self.events_processed += 1
                if self.events_processed > limit:
                    raise SimulationError(
                        f"exceeded max_events={limit}; runaway simulation?"
                    )
                if trace_events:
                    tracer.emit(ENGINE_EVENT, ev.time, label=ev.label, seq=ev.seq)
                if profiler is not None:
                    profiler.observe(ev)
                else:
                    ev.action()
            if until is not None and not self._stopped and self.now < until:
                # the queue emptied before the horizon: remember where, then
                # advance the clock to ``until`` (SimPy semantics) so a later
                # ``run`` resumes periodic processes from the horizon
                self.drained_at = self.now
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the event loop to stop after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for reuse in tests)."""
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self._stopped = False
