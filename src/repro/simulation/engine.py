"""The simulation engine: a clock plus the event loop."""

from __future__ import annotations

from typing import Callable, Optional

from repro.observability.trace import ENGINE_EVENT, NULL_TRACER, Tracer
from repro.simulation.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Engine:
    """Drives a discrete-event simulation.

    The engine owns the clock.  Components schedule work with
    :meth:`schedule` / :meth:`schedule_in` and the engine fires callbacks in
    nondecreasing time order.  The loop stops when the queue drains, when
    ``until`` is reached, or when :meth:`stop` is called from a callback.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5.0]
    """

    __slots__ = (
        "now",
        "_queue",
        "_running",
        "_stopped",
        "events_processed",
        "max_events",
        "tracer",
    )

    def __init__(self, max_events: int = 200_000_000, tracer: Tracer = NULL_TRACER) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: hard safety limit against runaway simulations
        self.max_events = max_events
        #: trace bus; per-callback records require ``tracer.engine_events``
        self.tracer = tracer

    # -- scheduling ------------------------------------------------------

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label!r} at t={time} in the past (now={self.now})"
            )
        return self._queue.push(time, action, label)

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label!r}")
        return self._queue.push(self.now + delay, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self._queue.cancel(event)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stopped.

        When ``until`` is given, the clock is advanced to exactly ``until``
        if the simulation would otherwise end earlier, mirroring SimPy's
        semantics so periodic processes can be resumed by a later ``run``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        # snapshot the firehose flag: one bool check per event, not three
        trace_events = self.tracer.enabled and self.tracer.engine_events
        try:
            while self._queue and not self._stopped:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self.now = until
                    return
                ev = self._queue.pop()
                if ev is None:
                    break
                self.now = ev.time
                self.events_processed += 1
                if self.events_processed > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; runaway simulation?"
                    )
                if trace_events:
                    self.tracer.emit(ENGINE_EVENT, ev.time, label=ev.label, seq=ev.seq)
                ev.action()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the event loop to stop after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for reuse in tests)."""
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self._stopped = False
