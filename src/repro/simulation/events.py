"""Event objects and the event queue.

Events are small, immutable-ish records ordered by ``(time, seq)``.  ``seq``
is a global monotonically increasing counter assigned at scheduling time, so
events scheduled earlier run earlier among ties — this gives the simulator
deterministic, insertion-ordered tie-breaking, which matters for
reproducibility of heartbeat races.

Cancellation is lazy (O(1)): a cancelled event stays in the heap until it
reaches the top.  To keep pop/peek O(log live) amortized on cancel-heavy
workloads — speculative execution and failure unwinding can cancel most of
the heap — the queue compacts itself in place whenever cancelled entries
outnumber live ones, so the heap never carries more than ~50% garbage
(beyond a small fixed floor).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

#: below this many cancelled entries compaction is not worth the heapify
COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which the event fires.
    seq:
        Scheduling sequence number; ties on ``time`` break by ``seq``.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped when popped.
    fired:
        Set when the event is popped live; cancelling a fired event is a
        no-op (it must not decrement the live count a second time).
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "fired")

    def __init__(self, time: float, seq: int, action: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it (lazy deletion)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq} {self.label!r}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy cancellation.

    ``len(q)`` / ``bool(q)`` report *live* events only; the heap itself may
    additionally hold up to ``max(live, COMPACT_MIN_CANCELLED)`` cancelled
    entries awaiting lazy removal (see :meth:`compact`).
    """

    __slots__ = ("_heap", "_seq", "_live", "_cancelled", "compactions")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0
        #: cancelled events still sitting in the heap
        self._cancelled = 0
        #: lifetime compaction count, for tests and the perf report
        self.compactions = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Total heap entries, live *and* cancelled (tests the compactor)."""
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        ev = Event(time, self._seq, action, label)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def repush(self, event: Event, time: float, label: Optional[str] = None) -> Event:
        """Re-arm a *fired* event at a new time, reusing the object.

        Periodic processes (heartbeats) chain one event per period; reusing
        the popped object skips an allocation per period.  The event gets a
        fresh ``seq``, exactly as if it had been newly pushed at this point,
        so deterministic tie-breaking — and any trace built from it — is
        identical to the allocate-per-period behaviour.

        Only a fired event is guaranteed to be out of the heap; re-pushing a
        pending (or lazily-cancelled, still-enqueued) one would corrupt the
        heap invariant, so that is rejected.
        """
        if not event.fired:
            raise ValueError(
                f"repush of {event!r}: only a fired event can be re-armed"
            )
        event.time = time
        event.seq = self._seq
        if label is not None:
            event.label = label
        event.cancelled = False
        event.fired = False
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (O(1) amortized, lazy).

        Cancelling an event that already fired — or was already cancelled —
        is a no-op, so callers may cancel defensively.  When cancelled
        entries come to outnumber live ones the heap is compacted in place,
        bounding the garbage fraction at ~50%.
        """
        if not event.cancelled and not event.fired:
            event.cancelled = True
            self._live -= 1
            self._cancelled += 1
            if (
                self._cancelled > self._live
                and self._cancelled >= COMPACT_MIN_CANCELLED
            ):
                self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry and re-heapify, in place.

        In place matters: the engine's hot loop binds the heap list once,
        so compaction must mutate that same list object.  O(live), amortized
        against the >= live cancellations that triggered it.  Pop order is
        unaffected — ``(time, seq)`` is a total order, so any heap holding
        the same live events pops them identically.
        """
        heap = self._heap
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    def pop(self) -> Optional[Event]:
        """Pop and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            ev.fired = True
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._live = 0
        self._cancelled = 0
