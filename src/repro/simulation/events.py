"""Event objects and the event queue.

Events are small, immutable-ish records ordered by ``(time, seq)``.  ``seq``
is a global monotonically increasing counter assigned at scheduling time, so
events scheduled earlier run earlier among ties — this gives the simulator
deterministic, insertion-ordered tie-breaking, which matters for
reproducibility of heartbeat races.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which the event fires.
    seq:
        Scheduling sequence number; ties on ``time`` break by ``seq``.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped when popped.
    fired:
        Set when the event is popped live; cancelling a fired event is a
        no-op (it must not decrement the live count a second time).
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "fired")

    def __init__(self, time: float, seq: int, action: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it (lazy deletion)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq} {self.label!r}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        ev = Event(time, self._seq, action, label)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (O(1), lazy).

        Cancelling an event that already fired — or was already cancelled —
        is a no-op, so callers may cancel defensively.
        """
        if not event.cancelled and not event.fired:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                ev.fired = True
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._live = 0
