"""Deterministic random-stream management.

Every stochastic component (workload synthesis, network jitter, ElephantTrap
coin tosses, placement choices, ...) draws from its *own* named stream derived
from a single experiment seed.  This keeps components statistically
independent and — crucially for the sensitivity sweeps — means changing one
parameter does not perturb the random draws of unrelated components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


class RandomStreams:
    """A factory of named, independent random generators.

    Two kinds of generators are provided:

    * :meth:`numpy` — ``numpy.random.Generator`` for vectorized draws
      (workload synthesis, metric bootstraps);
    * :meth:`python` — ``random.Random`` for cheap scalar draws on the hot
      simulation path (a single ``random.Random.random()`` call is ~4x
      faster than ``Generator.random()`` for scalars).

    Repeated requests for the same name return the same generator object.
    """

    def __init__(self, root_seed: int = 20110926) -> None:
        # default root seed: CLUSTER 2011 conference start date
        self.root_seed = int(root_seed)
        self._numpy: Dict[str, np.random.Generator] = {}
        self._python: Dict[str, random.Random] = {}

    def numpy(self, name: str) -> np.random.Generator:
        """Return the named NumPy generator (created on first use)."""
        gen = self._numpy.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._numpy[name] = gen
        return gen

    def python(self, name: str) -> random.Random:
        """Return the named stdlib generator (created on first use)."""
        gen = self._python.get(name)
        if gen is None:
            gen = random.Random(derive_seed(self.root_seed, name))
            self._python[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child stream-factory with an independent root seed."""
        return RandomStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed})"
