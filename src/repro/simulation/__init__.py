"""Discrete-event simulation kernel.

The kernel is deliberately minimal: a binary-heap event queue keyed on
``(time, sequence)`` with stable FIFO ordering for simultaneous events, a
simulation engine that drives callbacks, and seeded random-stream helpers so
that every experiment in the repository is deterministic.

The engine knows nothing about clusters, HDFS or MapReduce; those substrates
schedule events through :class:`Engine` and react in callbacks.
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.engine import Engine, SimulationError
from repro.simulation.rng import RandomStreams, derive_seed

__all__ = [
    "Event",
    "EventQueue",
    "Engine",
    "SimulationError",
    "RandomStreams",
    "derive_seed",
]
