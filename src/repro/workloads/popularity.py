"""File-popularity models.

The Yahoo! analysis (Fig. 2) and the experiment workloads (Fig. 6) both use
heavy-tailed, Zipf-like access distributions: "for a heavy-tailed
distribution of popularity, the more a file has been accessed, the more
future accesses it is likely to receive".
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, s: float = 0.9) -> np.ndarray:
    """Normalized Zipf(s) probabilities over ranks 1..n."""
    if n < 1:
        raise ValueError("need at least one rank")
    if s < 0:
        raise ValueError("Zipf exponent must be nonnegative")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def access_cdf(weights: np.ndarray) -> np.ndarray:
    """Cumulative access probability by file rank — the curve of Fig. 6."""
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        raise ValueError("empty weights")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return np.cumsum(weights) / total


class PopularityModel:
    """Draws file ranks from a Zipf(s) distribution.

    Rank 1 is the most popular file.  The experiment workloads use ~120
    files (the x-axis extent of Fig. 6).
    """

    def __init__(self, n_files: int, s: float = 0.9, rng: np.random.Generator | None = None):
        self.n_files = n_files
        self.s = s
        self.weights = zipf_weights(n_files, s)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def sample_ranks(self, n: int) -> np.ndarray:
        """Draw ``n`` file ranks (0-based indices, 0 = most popular)."""
        return self._rng.choice(self.n_files, size=n, p=self.weights)

    def cdf(self) -> np.ndarray:
        """The access CDF by rank (Fig. 6)."""
        return access_cdf(self.weights)

    def expected_counts(self, n_accesses: int) -> np.ndarray:
        """Expected access count per rank for an ``n_accesses`` workload."""
        return self.weights * n_accesses
