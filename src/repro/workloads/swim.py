"""SWIM-style trace synthesis.

Generates 500-job workloads with the published shape of the two Facebook
segments used in the paper.  Jobs draw an input file (which fixes the map
count: one map per block), CPU demands, and reduce counts; arrivals are
bursty, as in the Facebook trace where jobs arrive in close succession.

Class-conditional popularity: a job first picks a *size class* (small /
medium / large) from the workload's mix, then a file within the class from
a Zipf distribution over the class's rank order.  The resulting overall
access distribution is heavy-tailed (Fig. 6) while the job-size mix stays
under control (wl1 small-job dominated, wl2 with periodic large jobs).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, generate_catalog
from repro.workloads.popularity import zipf_weights


class SwimParams(NamedTuple):
    """Shape parameters of a synthesized workload."""

    name: str
    n_jobs: int
    #: probability a job is small / medium / large
    class_mix: tuple
    #: wl2-style periodic large jobs: every k-th job is large (0 = disabled)
    large_period: int
    #: Zipf exponent of within-class file popularity
    zipf_s: float
    #: mean jobs per arrival burst (geometric)
    burst_mean: float
    #: mean seconds between bursts (exponential)
    interburst_mean_s: float
    #: mean seconds between jobs inside a burst (exponential)
    intraburst_mean_s: float
    #: lognormal map CPU seconds: (mu, sigma) of log
    map_cpu: tuple
    #: lognormal reduce CPU seconds: (mu, sigma) of log
    reduce_cpu: tuple
    #: keyword arguments for :func:`~repro.workloads.catalog.generate_catalog`
    catalog_kwargs: dict = {}


#: wl1 — jobs 0-499 of the Facebook trace: "a long sequence of small jobs".
#: Nearly every job reads a 1-3 block file; arrivals come in deep bursts
#: (Facebook jobs arrive in close succession), which is what loads the
#: cluster enough for scheduling and locality effects to matter.
WL1_PARAMS = SwimParams(
    name="wl1",
    n_jobs=500,
    class_mix=(0.97, 0.029, 0.001),
    large_period=0,
    zipf_s=1.5,
    burst_mean=70.0,
    interburst_mean_s=40.0,
    intraburst_mean_s=0.12,
    map_cpu=(np.log(2.5), 0.55),
    reduce_cpu=(np.log(3.0), 0.5),
    catalog_kwargs={
        "n_small": 60,
        "n_medium": 24,
        "n_large": 6,
        "small_blocks": (1, 3),
        "medium_blocks": (8, 16),
        "large_blocks": (100, 250),
    },
)

#: wl2 — jobs 4800-5299: "a pattern of small jobs after large jobs".
#: Every 40th job reads a large (40-80 block) file; small jobs convoy
#: behind it under FIFO, which is why this segment favors Fair.
WL2_PARAMS = SwimParams(
    name="wl2",
    n_jobs=500,
    class_mix=(0.85, 0.13, 0.02),
    large_period=40,
    zipf_s=1.3,
    burst_mean=13.0,
    interburst_mean_s=42.0,
    intraburst_mean_s=0.3,
    map_cpu=(np.log(5.0), 0.55),
    reduce_cpu=(np.log(3.0), 0.5),
    catalog_kwargs={
        "n_small": 60,
        "n_medium": 24,
        "n_large": 6,
        "small_blocks": (2, 6),
        "medium_blocks": (12, 40),
        "large_blocks": (40, 80),
    },
)

_CLASSES = ("small", "medium", "large")


class Workload:
    """A synthesized trace: a file catalog plus a list of job specs."""

    def __init__(self, name: str, catalog: FileCatalog, specs: List[JobSpec]) -> None:
        self.name = name
        self.catalog = catalog
        self.specs = specs
        self.specs_by_id: Dict[int, JobSpec] = {s.job_id: s for s in specs}

    @property
    def n_jobs(self) -> int:
        """Job count."""
        return len(self.specs)

    def access_counts(self) -> Counter:
        """Accesses per file name (the popularity assignment of Fig. 11)."""
        return Counter(s.input_file for s in self.specs)

    def total_map_tasks(self) -> int:
        """Total map tasks implied by the trace."""
        blocks = {f.name: f.n_blocks for f in self.catalog.files}
        return sum(blocks[s.input_file] for s in self.specs)

    def empirical_access_cdf(self) -> np.ndarray:
        """CDF of accesses by file rank, most popular first (Fig. 6)."""
        counts = np.sort(np.asarray(list(self.access_counts().values())))[::-1]
        return np.cumsum(counts) / counts.sum()


def _arrival_times(params: SwimParams, rng: np.random.Generator) -> np.ndarray:
    """Bursty arrivals: geometric bursts with exponential gaps."""
    times: List[float] = []
    t = 0.0
    while len(times) < params.n_jobs:
        t += rng.exponential(params.interburst_mean_s)
        burst = 1 + rng.geometric(1.0 / params.burst_mean)
        for _ in range(int(burst)):
            if len(times) >= params.n_jobs:
                break
            t += rng.exponential(params.intraburst_mean_s)
            times.append(t)
    return np.asarray(times)


def synthesize_workload(
    params: SwimParams,
    rng: np.random.Generator,
    catalog: Optional[FileCatalog] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Workload:
    """Generate a workload from shape parameters."""
    if catalog is None:
        catalog = generate_catalog(rng, **params.catalog_kwargs)
    class_indices = {c: catalog.by_class(c) for c in _CLASSES}
    for c in _CLASSES:
        if not class_indices[c]:
            raise ValueError(f"catalog has no {c!r} files")
    class_weights = {
        c: zipf_weights(len(class_indices[c]), params.zipf_s) for c in _CLASSES
    }
    arrivals = _arrival_times(params, rng)
    specs: List[JobSpec] = []
    for i in range(params.n_jobs):
        if params.large_period and i % params.large_period == 0:
            size_class = "large"
        else:
            size_class = _CLASSES[
                int(rng.choice(3, p=np.asarray(params.class_mix) / sum(params.class_mix)))
            ]
        members = class_indices[size_class]
        fidx = members[int(rng.choice(len(members), p=class_weights[size_class]))]
        fspec = catalog[fidx]
        n_reduces = max(1, min(20, fspec.n_blocks // 6))
        specs.append(
            JobSpec(
                job_id=i,
                submit_time=float(arrivals[i]),
                input_file=fspec.name,
                map_cpu_s=float(rng.lognormal(*params.map_cpu)),
                n_reduces=n_reduces,
                reduce_cpu_s=float(rng.lognormal(*params.reduce_cpu)),
                shuffle_ratio=float(rng.uniform(0.2, 0.7)),
                output_ratio=float(rng.uniform(0.1, 0.4)),
            ).validate()
        )
    return Workload(params.name, catalog, specs)


def synthesize_wl1(
    rng: np.random.Generator,
    n_jobs: int = 500,
    catalog: Optional[FileCatalog] = None,
) -> Workload:
    """The small-job workload (favors FIFO)."""
    return synthesize_workload(WL1_PARAMS._replace(n_jobs=n_jobs), rng, catalog)


def synthesize_wl2(
    rng: np.random.Generator,
    n_jobs: int = 500,
    catalog: Optional[FileCatalog] = None,
) -> Workload:
    """The small-after-large workload (favors Fair)."""
    return synthesize_workload(WL2_PARAMS._replace(n_jobs=n_jobs), rng, catalog)
