"""Diurnal workloads: the hot set rotates day by day.

Section III found that production accesses are daily-periodic and that the
"common (time-varying) data set" changes over time.  This generator turns
that observation into a long-horizon stress test for adaptive replication:
the workload runs for several (time-compressed) days, and each day a
different pipeline's file group is the hot set.  An epoch-based replicator
tuned to yesterday is always one day behind; DARE re-adapts within each
day.

The day length is compressed (default 600 sim-seconds per day) so a
multi-day trace stays laptop-sized while preserving the structure:
within-day popularity is stable, across days it rotates.
"""

from __future__ import annotations

from typing import List, NamedTuple

import numpy as np

from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, FileSpec
from repro.workloads.popularity import zipf_weights
from repro.workloads.swim import Workload


class DiurnalParams(NamedTuple):
    """Shape of a rotating-hot-set workload."""

    n_days: int = 4
    day_length_s: float = 600.0
    jobs_per_day: int = 120
    #: file groups; group ``d % n_groups`` is hot on day ``d``
    n_groups: int = 4
    files_per_group: int = 10
    #: blocks per file (small files: the adaptation-speed stress case)
    blocks_range: tuple = (1, 3)
    #: probability a job reads the day's hot group (rest: uniform others)
    hot_fraction: float = 0.6
    #: Zipf exponent within a group
    zipf_s: float = 1.2
    map_cpu_s: float = 2.5

    def validate(self) -> "DiurnalParams":
        """Raise on malformed parameter sets; return self."""
        if self.n_days < 1 or self.n_groups < 1 or self.files_per_group < 1:
            raise ValueError("days, groups, and files must be positive")
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.day_length_s <= 0 or self.jobs_per_day < 1:
            raise ValueError("day length and job count must be positive")
        return self


def synthesize_diurnal(
    rng: np.random.Generator, params: DiurnalParams = DiurnalParams()
) -> Workload:
    """Generate a rotating-hot-set workload."""
    params.validate()
    files: List[FileSpec] = []
    for g in range(params.n_groups):
        for k in range(params.files_per_group):
            nb = int(rng.integers(params.blocks_range[0], params.blocks_range[1] + 1))
            files.append(FileSpec(f"g{g}_f{k:02d}", nb, "small"))
    catalog = FileCatalog(files)
    weights = zipf_weights(params.files_per_group, params.zipf_s)

    specs: List[JobSpec] = []
    job_id = 0
    for day in range(params.n_days):
        hot_group = day % params.n_groups
        day_start = day * params.day_length_s
        arrivals = np.sort(
            rng.uniform(0.0, params.day_length_s, size=params.jobs_per_day)
        )
        for t in arrivals:
            if rng.random() < params.hot_fraction:
                group = hot_group
            else:
                group = int(rng.integers(0, params.n_groups))
            fidx = int(rng.choice(params.files_per_group, p=weights))
            specs.append(
                JobSpec(
                    job_id=job_id,
                    submit_time=float(day_start + t),
                    input_file=f"g{group}_f{fidx:02d}",
                    map_cpu_s=params.map_cpu_s,
                    n_reduces=1,
                    reduce_cpu_s=params.map_cpu_s,
                ).validate()
            )
            job_id += 1
    return Workload("diurnal", catalog, specs)


def per_day_locality(result, params: DiurnalParams) -> List[float]:
    """Mean job locality per day of a finished diurnal run."""
    out = []
    for day in range(params.n_days):
        lo = day * params.jobs_per_day
        hi = lo + params.jobs_per_day
        recs = [r for r in result.collector.job_records if lo <= r.job_id < hi]
        out.append(sum(r.data_locality for r in recs) / max(1, len(recs)))
    return out
