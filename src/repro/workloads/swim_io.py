"""Trace I/O: real SWIM traces in, reproducible workloads out.

The paper replays Facebook traces published with SWIM (Statistical Workload
Injector for MapReduce).  SWIM's public trace files are tab-separated with
one job per line::

    job_id    submit_time_s    inter_arrival_s    map_input_bytes    shuffle_bytes    output_bytes

:func:`load_swim_trace` parses that format and converts it to a
:class:`~repro.workloads.swim.Workload`.  SWIM traces carry data *sizes*
but not data *identity* (every replayed job writes its own input), while
locality experiments need shared files with skewed popularity — so the
converter synthesizes a file catalog: jobs are bucketed by input size in
blocks, each bucket gets a pool of files sized by the requested ``reuse``
factor, and jobs draw files from their bucket's pool with a Zipf
distribution.  This preserves the trace's arrival pattern and per-job data
volumes exactly, and adds the popularity skew explicitly (documented, not
smuggled in).

:func:`save_workload` / :func:`load_workload` round-trip a synthesized
workload through JSON so experiments can be shipped and re-run bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, FileSpec
from repro.workloads.popularity import zipf_weights
from repro.workloads.swim import Workload


class SwimParseError(ValueError):
    """A SWIM trace line could not be parsed."""


def parse_swim_lines(lines) -> List[dict]:
    """Parse SWIM TSV lines into dict rows (skips blanks and comments)."""
    rows = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) == 1:
            parts = line.split()
        if len(parts) < 6:
            raise SwimParseError(
                f"line {lineno}: expected 6 fields "
                f"(job_id, submit, gap, input, shuffle, output), got {len(parts)}"
            )
        try:
            rows.append(
                {
                    "job_id": parts[0],
                    "submit_s": float(parts[1]),
                    "gap_s": float(parts[2]),
                    "input_bytes": int(float(parts[3])),
                    "shuffle_bytes": int(float(parts[4])),
                    "output_bytes": int(float(parts[5])),
                }
            )
        except ValueError as exc:
            raise SwimParseError(f"line {lineno}: {exc}") from exc
    if not rows:
        raise SwimParseError("trace contains no job lines")
    return rows


def _size_class(n_blocks: int) -> str:
    if n_blocks <= 8:
        return "small"
    if n_blocks <= 60:
        return "medium"
    return "large"


def workload_from_swim_rows(
    rows: List[dict],
    rng: np.random.Generator,
    name: str = "swim",
    reuse: float = 6.0,
    zipf_s: float = 1.1,
    map_cpu_s: float = 3.0,
    time_scale: float = 1.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Workload:
    """Convert parsed SWIM rows into a runnable workload.

    ``reuse`` is the mean number of jobs sharing one input file within a
    size bucket; ``time_scale`` compresses (<1) or stretches (>1) the
    arrival timeline the way SWIM's own replay scaling does.
    """
    if reuse < 1:
        raise ValueError("reuse must be >= 1")
    # bucket jobs by input size in blocks
    job_blocks = [
        max(1, -(-row["input_bytes"] // block_size)) for row in rows
    ]
    buckets: dict = {}
    for idx, nb in enumerate(job_blocks):
        buckets.setdefault(nb, []).append(idx)

    files: List[FileSpec] = []
    assignment: dict = {}
    for nb, members in sorted(buckets.items()):
        pool_size = max(1, round(len(members) / reuse))
        pool = []
        for k in range(pool_size):
            fname = f"swim_b{nb}_{k:03d}"
            files.append(FileSpec(fname, nb, _size_class(nb)))
            pool.append(fname)
        weights = zipf_weights(pool_size, zipf_s)
        draws = rng.choice(pool_size, size=len(members), p=weights)
        for idx, d in zip(members, draws):
            assignment[idx] = pool[int(d)]

    catalog = FileCatalog(files)
    specs: List[JobSpec] = []
    for i, row in enumerate(rows):
        input_bytes = max(1, row["input_bytes"])
        n_blocks = job_blocks[i]
        n_reduces = max(1, min(20, n_blocks // 6))
        specs.append(
            JobSpec(
                job_id=i,
                submit_time=row["submit_s"] * time_scale,
                input_file=assignment[i],
                map_cpu_s=map_cpu_s,
                n_reduces=n_reduces,
                reduce_cpu_s=map_cpu_s,
                shuffle_ratio=row["shuffle_bytes"] / input_bytes,
                output_ratio=row["output_bytes"] / input_bytes,
            ).validate()
        )
    specs.sort(key=lambda s: s.submit_time)
    return Workload(name, catalog, specs)


def load_swim_trace(
    path: Union[str, Path],
    rng: np.random.Generator,
    **kwargs,
) -> Workload:
    """Load a SWIM-format TSV trace file into a workload."""
    with open(path) as fh:
        rows = parse_swim_lines(fh)
    return workload_from_swim_rows(rows, rng, name=Path(path).stem, **kwargs)


# ---------------------------------------------------------------------------
# Workload JSON round-tripping
# ---------------------------------------------------------------------------

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Serialize a workload (catalog + specs) to JSON."""
    doc = {
        "format": _FORMAT_VERSION,
        "name": workload.name,
        "catalog": [
            {"name": f.name, "n_blocks": f.n_blocks, "size_class": f.size_class}
            for f in workload.catalog.files
        ],
        "jobs": [spec._asdict() for spec in workload.specs],
    }
    Path(path).write_text(json.dumps(doc))


def load_workload(path: Union[str, Path]) -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported workload format {doc.get('format')!r}")
    catalog = FileCatalog(
        [FileSpec(f["name"], f["n_blocks"], f["size_class"]) for f in doc["catalog"]]
    )
    specs = [JobSpec(**job).validate() for job in doc["jobs"]]
    return Workload(doc["name"], catalog, specs)
