"""File catalogs: the data set a workload reads.

A catalog partitions files into size classes so trace synthesis can pick a
"small job" (a small input file) or a "large job" (a large one) while the
popularity model governs *which* file within a class is reused.  Following
the SWIM Facebook characterization, the vast majority of inputs are a
handful of blocks and a few are hundreds.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

import numpy as np

from repro.hdfs.block import DEFAULT_BLOCK_SIZE


class FileSpec(NamedTuple):
    """A file in the data set."""

    name: str
    n_blocks: int
    size_class: str  # 'small' | 'medium' | 'large'

    def size_bytes(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        """Total bytes (whole blocks; the paper replicates per-block)."""
        return self.n_blocks * block_size


class FileCatalog:
    """An ordered collection of files, popularity-rank order.

    Index 0 is the (intended) most popular file.  Size classes are
    interleaved so popular files exist in every class.
    """

    def __init__(self, files: Sequence[FileSpec]) -> None:
        if not files:
            raise ValueError("empty catalog")
        names = {f.name for f in files}
        if len(names) != len(files):
            raise ValueError("duplicate file names in catalog")
        self.files: List[FileSpec] = list(files)

    def __len__(self) -> int:
        return len(self.files)

    def __getitem__(self, i: int) -> FileSpec:
        return self.files[i]

    def by_class(self, size_class: str) -> List[int]:
        """Indices of files in a size class, in rank order."""
        return [i for i, f in enumerate(self.files) if f.size_class == size_class]

    @property
    def total_blocks(self) -> int:
        """Logical data-set size in blocks."""
        return sum(f.n_blocks for f in self.files)

    def total_bytes(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        """Logical data-set size in bytes."""
        return self.total_blocks * block_size


def generate_catalog(
    rng: np.random.Generator,
    n_small: int = 90,
    n_medium: int = 24,
    n_large: int = 6,
    small_blocks: tuple = (1, 12),
    medium_blocks: tuple = (13, 50),
    large_blocks: tuple = (120, 360),
) -> FileCatalog:
    """Generate the default ~120-file experiment data set.

    Class sizes follow the SWIM Facebook shape: most files are small, a
    few are very large.  Files are named ``f<rank>`` in a rank order that
    interleaves classes (so popular small files and popular large files
    both exist, as in a production namespace).
    """
    specs: List[tuple] = []
    for _ in range(n_small):
        specs.append(("small", int(rng.integers(small_blocks[0], small_blocks[1] + 1))))
    for _ in range(n_medium):
        specs.append(("medium", int(rng.integers(medium_blocks[0], medium_blocks[1] + 1))))
    for _ in range(n_large):
        specs.append(("large", int(rng.integers(large_blocks[0], large_blocks[1] + 1))))
    # interleave classes across the rank order deterministically
    order = rng.permutation(len(specs))
    files = [
        FileSpec(f"f{rank:03d}", specs[i][1], specs[i][0])
        for rank, i in enumerate(order)
    ]
    return FileCatalog(files)
