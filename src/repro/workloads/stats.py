"""Workload statistics: summarize a trace before running it.

Replaying a trace blind makes calibration arguments unreviewable; this
module computes the descriptive statistics DESIGN.md and CALIBRATION.md
reason about — job-size mix, arrival burstiness, per-class data volumes,
and the access skew that drives every DARE result.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.workloads.swim import Workload


class WorkloadStats(NamedTuple):
    """Descriptive statistics of one workload trace."""

    name: str
    n_jobs: int
    n_files: int
    total_map_tasks: int
    dataset_blocks: int
    span_s: float
    # job sizes (maps per job)
    maps_p50: float
    maps_p90: float
    maps_max: int
    small_job_fraction: float  # jobs with <= 3 maps
    # arrivals
    interarrival_mean_s: float
    interarrival_p99_s: float
    burstiness: float  # cv of interarrivals; >1 = burstier than Poisson
    # popularity
    top1_access_share: float
    top10_access_share: float
    gini: float
    # data volumes
    input_gb: float
    shuffle_gb: float
    output_gb: float

    def report(self) -> str:
        """Printable multi-line summary."""
        return "\n".join(
            [
                f"workload {self.name!r}: {self.n_jobs} jobs over "
                f"{self.span_s:.0f}s, {self.n_files} files "
                f"({self.dataset_blocks} blocks)",
                f"  maps/job: p50={self.maps_p50:.0f} p90={self.maps_p90:.0f} "
                f"max={self.maps_max}; small jobs (<=3 maps): "
                f"{100 * self.small_job_fraction:.0f}%",
                f"  arrivals: mean gap {self.interarrival_mean_s:.2f}s, "
                f"p99 {self.interarrival_p99_s:.1f}s, "
                f"burstiness cv={self.burstiness:.1f}",
                f"  popularity: top-1 file {100 * self.top1_access_share:.0f}% "
                f"of accesses, top-10 {100 * self.top10_access_share:.0f}%, "
                f"gini={self.gini:.2f}",
                f"  volumes: input {self.input_gb:.0f} GB, shuffle "
                f"{self.shuffle_gb:.0f} GB, output {self.output_gb:.0f} GB",
            ]
        )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a nonnegative sample (0 uniform, ->1 skewed)."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0 or v.sum() == 0:
        raise ValueError("need positive mass for a Gini coefficient")
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def compute_stats(workload: Workload, block_size: int = DEFAULT_BLOCK_SIZE) -> WorkloadStats:
    """Compute the full statistics bundle for a workload."""
    blocks = {f.name: f.n_blocks for f in workload.catalog.files}
    maps = np.asarray([blocks[s.input_file] for s in workload.specs], dtype=float)
    times = np.asarray([s.submit_time for s in workload.specs])
    gaps = np.diff(np.sort(times))
    counts = np.sort(
        np.asarray(list(workload.access_counts().values()), dtype=float)
    )[::-1]
    input_bytes = maps * block_size
    shuffle = np.asarray(
        [s.shuffle_ratio for s in workload.specs]
    ) * input_bytes
    output = np.asarray([s.output_ratio for s in workload.specs]) * input_bytes
    if gaps.size == 0:
        mean_gap, p99_gap, burst = 0.0, 0.0, 0.0
    else:
        mean_gap = float(gaps.mean())
        p99_gap = float(np.percentile(gaps, 99))
        burst = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    return WorkloadStats(
        name=workload.name,
        n_jobs=workload.n_jobs,
        n_files=len(workload.catalog),
        total_map_tasks=int(maps.sum()),
        dataset_blocks=workload.catalog.total_blocks,
        span_s=float(times.max() - times.min()) if times.size else 0.0,
        maps_p50=float(np.percentile(maps, 50)),
        maps_p90=float(np.percentile(maps, 90)),
        maps_max=int(maps.max()),
        small_job_fraction=float((maps <= 3).mean()),
        interarrival_mean_s=mean_gap,
        interarrival_p99_s=p99_gap,
        burstiness=burst,
        top1_access_share=float(counts[0] / counts.sum()),
        top10_access_share=float(counts[:10].sum() / counts.sum()),
        gini=_gini(counts),
        input_gb=float(input_bytes.sum() / 1e9),
        shuffle_gb=float(shuffle.sum() / 1e9),
        output_gb=float(output.sum() / 1e9),
    )
