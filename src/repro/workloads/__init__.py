"""Workload synthesis: SWIM-style traces and file popularity models.

The paper replays 500-job segments of a Facebook 600-machine production
trace published with SWIM (Chen et al., MASCOTS'11):

* **wl1** (jobs 0-499) — "a long sequence of small jobs"; its smaller
  job-size variance favors the FIFO scheduler;
* **wl2** (jobs 4800-5299) — "a pattern of small jobs after large jobs",
  which favors the Fair scheduler (small jobs would otherwise convoy
  behind large ones).

Without the original trace we synthesize workloads with the published
shape: heavy-tailed job sizes, bursty Poisson arrivals, and input files
drawn from a Zipf-like popularity distribution matching the access CDF of
Fig. 6.
"""

from repro.workloads.popularity import PopularityModel, zipf_weights, access_cdf
from repro.workloads.catalog import FileCatalog, FileSpec, generate_catalog
from repro.workloads.swim import (
    SwimParams,
    WL1_PARAMS,
    WL2_PARAMS,
    Workload,
    synthesize_wl1,
    synthesize_wl2,
    synthesize_workload,
)

__all__ = [
    "PopularityModel",
    "zipf_weights",
    "access_cdf",
    "FileCatalog",
    "FileSpec",
    "generate_catalog",
    "SwimParams",
    "WL1_PARAMS",
    "WL2_PARAMS",
    "Workload",
    "synthesize_wl1",
    "synthesize_wl2",
    "synthesize_workload",
]
