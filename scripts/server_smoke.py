#!/usr/bin/env python3
"""CI smoke test for ``repro serve`` — stdlib clients only.

Boots the HTTP server as a real subprocess, then checks the acceptance
path end to end:

1. four concurrent clients POST the same smoke grid; idempotency folds
   them onto one job (exactly one ``created: true``);
2. every client streams SSE until the ``done`` event, then GETs the
   result — each body must be byte-identical to the serial
   ``run_cells`` rendering computed in this process;
3. the queue executed each distinct cell exactly once
   (``cells_executed`` in ``/api/cluster``);
4. a request burst from one client trips the 429 rate limit with a
   ``Retry-After`` header while an independent client still gets 200;
5. SIGTERM drains the server: it exits 0 and reports the drain.

Run from the repo root: ``PYTHONPATH=src python scripts/server_smoke.py``
"""

from __future__ import annotations

import http.client
import json
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.experiments.sweep import (
    build_grid,
    doc_to_text,
    outcomes_to_doc,
    run_cells,
)

GRID = "smoke"
N_JOBS = 8
SEED = 20110926
SPEC = {"grid": GRID, "n_jobs": N_JOBS, "seed": SEED}
CLIENTS = 4


def check(cond: bool, message: str) -> None:
    if not cond:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def request(port: int, method: str, path: str, client: str,
            body: dict | None = None) -> tuple[int, dict, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"X-Client-Id": client})
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), raw
    finally:
        conn.close()


def stream_until_done(port: int, job_id: str, client: str) -> list[str]:
    """Follow the job's SSE stream; return the event kinds seen."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    kinds: list[str] = []
    try:
        conn.request("GET", f"/api/jobs/{job_id}/events",
                     headers={"X-Client-Id": client})
        resp = conn.getresponse()
        assert resp.status == 200, resp.status
        while True:
            line = resp.readline()
            if not line:
                break
            if line.startswith(b"event:"):
                kinds.append(line.split(b":", 1)[1].strip().decode())
            if kinds and kinds[-1] == "done":
                break
    finally:
        conn.close()
    return kinds


def client_run(port: int, index: int, out: dict) -> None:
    me = f"client-{index}"
    status, _, raw = request(port, "POST", "/api/jobs", me, SPEC)
    check(status in (200, 202), f"{me} POST accepted (status {status})")
    doc = json.loads(raw)
    kinds = stream_until_done(port, doc["id"], me)
    check(kinds[-1] == "done", f"{me} SSE stream ended with done")
    status, _, result = request(
        port, "GET", f"/api/jobs/{doc['id']}/result", me)
    check(status == 200, f"{me} result ready after done event")
    out[index] = {"id": doc["id"], "created": doc["created"],
                  "result": result}


def main() -> None:
    cells = build_grid(GRID, n_jobs=N_JOBS, seed=SEED)
    serial = doc_to_text(outcomes_to_doc(
        run_cells(cells, jobs=1), grid=GRID, n_jobs=N_JOBS, seed=SEED,
        provenance=False,
    )).encode()

    cache_dir = tempfile.mkdtemp(prefix="server-smoke-cache-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", cache_dir,
         "--rate", "5", "--burst", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        bufsize=1,
    )
    try:
        banner = proc.stdout.readline()
        check(banner.startswith("serving on http://"),
              f"server came up ({banner.strip()!r})")
        port = int(banner.rsplit(":", 1)[1])

        # four concurrent clients, one shared grid
        results: dict = {}
        threads = [
            threading.Thread(target=client_run, args=(port, i, results))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        check(len(results) == CLIENTS, "all clients finished")
        check(len({r["id"] for r in results.values()}) == 1,
              "identical submissions deduped onto one job")
        check(sum(r["created"] for r in results.values()) == 1,
              "exactly one submission created the job")
        for i in range(CLIENTS):
            check(results[i]["result"] == serial,
                  f"client-{i} result byte-identical to serial run_cells")

        status, _, raw = request(port, "GET", "/api/cluster", "observer")
        cluster = json.loads(raw)
        check(cluster["cells_executed"] == len(cells),
              f"each of the {len(cells)} cells executed exactly once")

        # a burst trips the limiter; an independent client is unaffected
        codes = [request(port, "GET", "/api/healthz", "bursty")[0]
                 for _ in range(20)]
        check(codes.count(429) > 0, "burst client rate limited (429)")
        status, headers, _ = request(port, "GET", "/api/healthz", "bursty")
        if status == 429:
            check("Retry-After" in headers, "429 carries Retry-After")
        status, _, _ = request(port, "GET", "/api/healthz", "calm")
        check(status == 200, "independent client unaffected by the burst")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        check(proc.returncode == 0, "SIGTERM drained the server (exit 0)")
        check("server drained" in out, "drain was reported")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    print("server smoke passed")


if __name__ == "__main__":
    main()
