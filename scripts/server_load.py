#!/usr/bin/env python3
"""k6-style load harness for ``repro serve`` — stdlib clients only.

Boots the server as a subprocess and drives it through ramped stages of
concurrent clients (2 -> 8 -> 16 by default), each firing a probe-heavy
request mix: ``GET /api/healthz`` latency probes with an occasional
``POST /api/jobs`` submission (distinct seeds, so every submission is a
genuinely new job).  What it measures — and what CI gates on — is the
backpressure envelope:

* per-stage latency percentiles (p50/p90/p99) of successful probes;
* **429** rejections once a client outruns its token bucket, every one
  of which must carry ``Retry-After``;
* **503** rejections once ``--max-jobs`` jobs are active (the bounded
  backlog pushing back instead of queueing without bound);
* nothing outside {200, 202, 429, 503} — any other status or a dropped
  connection fails the run;
* a calm watchdog client (one probe every 2 s, its own rate bucket)
  must see 200 for the whole run: overload may shed load, never hang
  the server;
* SIGTERM afterwards must drain cleanly (exit 0).

``--smoke`` is the 30-second CI profile used by the server-smoke job;
the default profile runs the same ramp over 120 s.  The per-stage
report is written as JSON (``--report``, default server_load.json).

Run from the repo root: ``PYTHONPATH=src python scripts/server_load.py``
"""

from __future__ import annotations

import argparse
import http.client
import itertools
import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

#: concurrency ramp: (clients, fraction of the total duration)
STAGES: Tuple[Tuple[int, float], ...] = ((2, 0.2), (8, 0.3), (16, 0.5))

#: every Nth request per client is a job submission instead of a probe
SUBMIT_EVERY = 5

#: pause between requests per client (keeps 16 clients civil on 2 vCPUs)
THINK_S = 0.005

OK_STATUSES = frozenset({200, 202, 429, 503})


def request(
    port: int, method: str, path: str, client: str,
    body: Optional[dict] = None, timeout: float = 30.0,
) -> Tuple[int, Dict[str, str], bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"X-Client-Id": client})
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), raw
    finally:
        conn.close()


def percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = round(q / 100.0 * (len(ordered) - 1))
    return ordered[idx]


class StageStats:
    """Thread-safe tally of one ramp stage."""

    def __init__(self, clients: int, duration_s: float) -> None:
        self.clients = clients
        self.duration_s = duration_s
        self.lock = threading.Lock()
        self.statuses: Counter = Counter()
        self.probe_latencies: List[float] = []
        self.missing_retry_after = 0
        self.transport_errors: List[str] = []

    def record(self, kind: str, status: int,
               headers: Dict[str, str], latency_s: float) -> None:
        with self.lock:
            self.statuses[status] += 1
            if kind == "probe" and status == 200:
                self.probe_latencies.append(latency_s)
            if status == 429 and "Retry-After" not in headers:
                self.missing_retry_after += 1

    def error(self, message: str) -> None:
        with self.lock:
            self.transport_errors.append(message)

    def report(self) -> Dict:
        total = sum(self.statuses.values())
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_s, 1),
            "requests": total,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "rejected_429": self.statuses[429],
            "rejected_503": self.statuses[503],
            "rejection_rate": round(
                (self.statuses[429] + self.statuses[503]) / total, 4
            ) if total else 0.0,
            "probe_p50_ms": round(percentile(self.probe_latencies, 50) * 1e3, 2),
            "probe_p90_ms": round(percentile(self.probe_latencies, 90) * 1e3, 2),
            "probe_p99_ms": round(percentile(self.probe_latencies, 99) * 1e3, 2),
            "transport_errors": len(self.transport_errors),
        }


def client_loop(
    port: int, client_id: str, deadline: float,
    stats: StageStats, seeds: "itertools.count",
) -> None:
    sent = 0
    while time.monotonic() < deadline:
        sent += 1
        if sent % SUBMIT_EVERY == 0:
            kind, method, path = "submit", "POST", "/api/jobs"
            body: Optional[dict] = {
                "grid": "smoke", "n_jobs": 8, "seed": next(seeds),
            }
        else:
            kind, method, path, body = "probe", "GET", "/api/healthz", None
        t0 = time.monotonic()
        try:
            status, headers, _ = request(port, method, path, client_id, body)
        except OSError as exc:
            stats.error(f"{client_id} {method} {path}: {exc}")
            continue
        stats.record(kind, status, headers, time.monotonic() - t0)
        time.sleep(THINK_S)


def watchdog_loop(port: int, stop: threading.Event,
                  failures: List[str]) -> None:
    """A calm client: one probe every 2 s must always get 200."""
    while not stop.wait(2.0):
        try:
            status, _, _ = request(port, "GET", "/api/healthz",
                                   "calm-watchdog", timeout=10.0)
        except OSError as exc:
            failures.append(f"watchdog: {exc}")
            continue
        if status != 200:
            failures.append(f"watchdog: healthz returned {status}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=120.0,
                        help="total seconds across all ramp stages")
    parser.add_argument("--smoke", action="store_true",
                        help="30-second CI profile (overrides --duration)")
    parser.add_argument("--report", default="server_load.json", metavar="PATH",
                        help="write the per-stage JSON report here")
    args = parser.parse_args()
    duration = 30.0 if args.smoke else args.duration

    cache_dir = tempfile.mkdtemp(prefix="server-load-cache-")
    # small bucket (429s appear as soon as a client outruns 10 req/s) and
    # tiny backlog (503s as soon as two jobs are active); thread isolation
    # keeps the load test about the HTTP edge, not worker processes
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--isolation", "thread", "--no-cache",
         "--cache-dir", cache_dir, "--max-jobs", "2",
         "--rate", "10", "--burst", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        bufsize=1,
    )
    failures: List[str] = []
    stages: List[StageStats] = []
    try:
        banner = proc.stdout.readline()
        if not banner.startswith("serving on http://"):
            print(f"FAIL: server did not come up ({banner.strip()!r})",
                  file=sys.stderr)
            return 1
        port = int(banner.rsplit(":", 1)[1])
        print(f"server up on port {port}; "
              f"ramp {'/'.join(str(c) for c, _ in STAGES)} clients "
              f"over {duration:.0f}s")

        stop = threading.Event()
        watchdog_failures: List[str] = []
        watchdog = threading.Thread(
            target=watchdog_loop, args=(port, stop, watchdog_failures),
            daemon=True,
        )
        watchdog.start()

        seeds = itertools.count(1_000)
        for clients, fraction in STAGES:
            stage = StageStats(clients, duration * fraction)
            stages.append(stage)
            deadline = time.monotonic() + stage.duration_s
            threads = [
                threading.Thread(
                    target=client_loop,
                    args=(port, f"load-{clients}-{i}", deadline, stage, seeds),
                )
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            rep = stage.report()
            print(f"  {clients:>3} clients {stage.duration_s:5.1f}s: "
                  f"{rep['requests']:>5} reqs  "
                  f"p50 {rep['probe_p50_ms']:6.1f}ms  "
                  f"p99 {rep['probe_p99_ms']:6.1f}ms  "
                  f"429s {rep['rejected_429']:>4}  "
                  f"503s {rep['rejected_503']:>4}")

        stop.set()
        watchdog.join(timeout=10)
        failures.extend(watchdog_failures)

        # -- verdicts over the whole run ---------------------------------
        unexpected = {
            status: count
            for stage in stages
            for status, count in stage.statuses.items()
            if status not in OK_STATUSES
        }
        if unexpected:
            failures.append(f"unexpected statuses: {unexpected}")
        transport = sum(len(s.transport_errors) for s in stages)
        if transport:
            failures.append(f"{transport} dropped/failed connections")
        if sum(s.statuses[429] for s in stages) == 0:
            failures.append("rate limiter never engaged (no 429)")
        missing = sum(s.missing_retry_after for s in stages)
        if missing:
            failures.append(f"{missing} 429 responses without Retry-After")
        if sum(s.statuses[503] for s in stages) == 0:
            failures.append("backlog never pushed back (no 503)")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        if proc.returncode != 0:
            failures.append(
                f"server exited {proc.returncode} on SIGTERM drain"
            )
            sys.stderr.write(out)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    report = {
        "profile": "smoke" if args.smoke else "full",
        "duration_s": duration,
        "stages": [s.report() for s in stages],
        "failures": failures,
    }
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.report}")

    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print("server load envelope passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
